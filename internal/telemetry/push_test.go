package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// pushTarget is a scripted pushgateway: it records every request and answers
// from a status script (last entry repeats).
type pushTarget struct {
	mu     sync.Mutex
	bodies []string
	paths  []string
	types  []string
	script []int
}

func (pt *pushTarget) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	pt.mu.Lock()
	pt.bodies = append(pt.bodies, string(body))
	pt.paths = append(pt.paths, r.URL.Path)
	pt.types = append(pt.types, r.Header.Get("Content-Type"))
	status := http.StatusOK
	if len(pt.script) > 0 {
		status = pt.script[0]
		if len(pt.script) > 1 {
			pt.script = pt.script[1:]
		}
	}
	pt.mu.Unlock()
	w.WriteHeader(status)
}

func (pt *pushTarget) count() int {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return len(pt.bodies)
}

func TestPusherDelivers(t *testing.T) {
	target := &pushTarget{}
	ts := httptest.NewServer(target)
	defer ts.Close()

	p, err := NewPusher(ts.URL, "heroserve", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p.URL(), "/metrics/job/heroserve") {
		t.Errorf("resolved URL %q lacks the pushgateway path", p.URL())
	}
	if !p.Offer([]byte("snapshot_a 1\n")) {
		t.Fatal("offer refused")
	}
	p.Close()
	if got := p.Pushed(); got != 1 {
		t.Fatalf("pushed = %d, want 1", got)
	}
	if got := p.Failures(); got != 0 {
		t.Errorf("failures = %d", got)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if len(target.bodies) != 1 || target.bodies[0] != "snapshot_a 1\n" {
		t.Errorf("target saw %q", target.bodies)
	}
	if target.paths[0] != "/metrics/job/heroserve" {
		t.Errorf("target path %q", target.paths[0])
	}
	if !strings.HasPrefix(target.types[0], "text/plain") {
		t.Errorf("content type %q", target.types[0])
	}
	// Offer after Close is refused, not a panic.
	if p.Offer([]byte("late")) {
		t.Error("offer accepted after Close")
	}
}

func TestPusherRetriesThenSucceeds(t *testing.T) {
	target := &pushTarget{script: []int{http.StatusBadGateway, http.StatusBadGateway, http.StatusOK}}
	ts := httptest.NewServer(target)
	defer ts.Close()

	p, err := NewPusher(ts.URL, "j", nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRetry(3, 0)
	p.Offer([]byte("x 1\n"))
	p.Close()
	if p.Pushed() != 1 || p.Failures() != 0 {
		t.Fatalf("pushed/failures = %d/%d, want 1/0", p.Pushed(), p.Failures())
	}
	if got := target.count(); got != 3 {
		t.Errorf("target saw %d attempts, want 3", got)
	}
}

func TestPusherCountsFailures(t *testing.T) {
	target := &pushTarget{script: []int{http.StatusInternalServerError}}
	ts := httptest.NewServer(target)
	defer ts.Close()

	p, err := NewPusher(ts.URL, "j", nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRetry(2, 0)
	p.Offer([]byte("x 1\n"))
	p.Close()
	if p.Pushed() != 0 || p.Failures() != 1 {
		t.Fatalf("pushed/failures = %d/%d, want 0/1", p.Pushed(), p.Failures())
	}
	if got := target.count(); got != 2 {
		t.Errorf("target saw %d attempts, want 2", got)
	}
}

func TestPusherURLLayout(t *testing.T) {
	p, err := NewPusher("http://host:9091", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.URL() != "http://host:9091/metrics/job/heroserve" {
		t.Errorf("default job URL = %q", p.URL())
	}
	p.Close()
	// An explicit pushgateway path is kept verbatim.
	p, err = NewPusher("http://host:9091/metrics/job/custom", "ignored", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.URL() != "http://host:9091/metrics/job/custom" {
		t.Errorf("explicit path URL = %q", p.URL())
	}
	p.Close()
	if _, err := NewPusher("ftp://host", "j", nil); err == nil {
		t.Error("non-http scheme accepted")
	}
	if _, err := NewPusher("http://\x00bad", "j", nil); err == nil {
		t.Error("unparsable URL accepted")
	}
}

// TestPusherServerFlapping drives a gateway that alternates 5xx and 2xx per
// request while the pusher has no retries: snapshots alternate between
// dropped and delivered, Failures only ever grows, and delivered bodies
// arrive in offer order — a flapping endpoint corrupts nothing and never
// wedges the pusher.
func TestPusherServerFlapping(t *testing.T) {
	target := &pushTarget{}
	n := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		target.mu.Lock()
		n++
		odd := n%2 == 1
		target.mu.Unlock()
		if odd {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		target.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	p, err := NewPusher(ts.URL, "j", nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRetry(1, 0)

	settled := func(want int64) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if p.Pushed()+p.Failures() >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("push %d never settled (pushed %d, failures %d)", want, p.Pushed(), p.Failures())
	}
	var lastFailures int64
	for i, body := range []string{"a 1\n", "b 1\n", "c 1\n", "d 1\n"} {
		if !p.Offer([]byte(body)) {
			t.Fatalf("offer %d refused", i)
		}
		settled(int64(i + 1))
		if f := p.Failures(); f < lastFailures {
			t.Fatalf("failures went backwards: %d -> %d", lastFailures, f)
		} else {
			lastFailures = f
		}
	}
	p.Close()

	// Requests 1 and 3 hit the 5xx half of the flap; 2 and 4 the 2xx half.
	if p.Pushed() != 2 || p.Failures() != 2 {
		t.Errorf("pushed/failures = %d/%d, want 2/2", p.Pushed(), p.Failures())
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if len(target.bodies) != 2 || target.bodies[0] != "b 1\n" || target.bodies[1] != "d 1\n" {
		t.Errorf("delivered bodies %q, want the 2xx-half snapshots in offer order", target.bodies)
	}
}

// TestPusherLatestWins floods the mailbox while the target is slow: the
// pusher must never block the offering goroutine and must drop stale queued
// snapshots rather than deliver them late.
func TestPusherLatestWins(t *testing.T) {
	release := make(chan struct{})
	target := &pushTarget{}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		<-release
		target.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	p, err := NewPusher(ts.URL, "j", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !p.Offer([]byte("snap\n")) {
			t.Fatal("offer refused while open")
		}
	}
	close(release)
	p.Close()
	// At most the in-flight snapshot plus the final queued one are delivered.
	if got := p.Pushed(); got < 1 || got > 2 {
		t.Errorf("pushed = %d, want 1 or 2 (latest-wins)", got)
	}
}
