package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestTracerExportIsValidChromeJSON(t *testing.T) {
	clock := 0.0
	tr := NewTracer(func() float64 { return clock })
	pid := tr.BeginProcess("heroserve")
	if pid != 1 {
		t.Fatalf("first pid = %d, want 1", pid)
	}
	tr.ThreadName(ControlTID, "control-plane")
	tr.Complete(5, "request", "request", 1.0, 3.0, map[string]any{"id": 4})
	tr.Complete(5, "request", "prefill", 1.0, 2.0, nil)
	clock = 1.5
	tr.Instant(ControlTID, "sched", "policy-select", map[string]any{"cost": Float(math.Inf(1))})
	tr.AsyncBegin("collective", "allreduce", 7, map[string]any{"scheme": "ring"})
	clock = 2.5
	tr.AsyncEnd("collective", "allreduce", 7)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	// Complete spans are in microseconds.
	req := doc.TraceEvents[2]
	if req["ph"] != "X" || req["ts"].(float64) != 1e6 || req["dur"].(float64) != 2e6 {
		t.Errorf("bad complete span: %v", req)
	}
	inst := doc.TraceEvents[4]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Errorf("bad instant: %v", inst)
	}
	if inst["args"].(map[string]any)["cost"] != "+Inf" {
		t.Errorf("Inf arg not sanitized: %v", inst)
	}
	b, e := doc.TraceEvents[5], doc.TraceEvents[6]
	if b["ph"] != "b" || e["ph"] != "e" || b["id"] != e["id"] || b["id"] != "0x7" {
		t.Errorf("bad async pair: %v / %v", b, e)
	}

	// Determinism: identical call sequence => identical bytes.
	clock = 0
	tr2 := NewTracer(func() float64 { return clock })
	tr2.BeginProcess("heroserve")
	tr2.ThreadName(ControlTID, "control-plane")
	tr2.Complete(5, "request", "request", 1.0, 3.0, map[string]any{"id": 4})
	tr2.Complete(5, "request", "prefill", 1.0, 2.0, nil)
	clock = 1.5
	tr2.Instant(ControlTID, "sched", "policy-select", map[string]any{"cost": Float(math.Inf(1))})
	tr2.AsyncBegin("collective", "allreduce", 7, map[string]any{"scheme": "ring"})
	clock = 2.5
	tr2.AsyncEnd("collective", "allreduce", 7)
	var buf2 bytes.Buffer
	if err := tr2.Export(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("same call sequence produced different bytes")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.BeginProcess("p")
	tr.ThreadName(0, "t")
	tr.Complete(0, "c", "n", 0, 1, nil)
	tr.Instant(0, "c", "n", nil)
	tr.InstantAt(1, 0, "c", "n", nil)
	tr.AsyncBegin("c", "n", 1, nil)
	tr.AsyncEnd("c", "n", 1)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer must record nothing")
	}
	if err := tr.Export(nil); err != nil {
		t.Error("nil tracer export should be a no-op")
	}
}

func TestEmptyTracerExportsEmptyArray(t *testing.T) {
	tr := NewTracer(func() float64 { return 0 })
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Errorf("want empty traceEvents array, got %v", doc.TraceEvents)
	}
}

func TestCompleteClampsBackwardsSpan(t *testing.T) {
	tr := NewTracer(func() float64 { return 0 })
	tr.BeginProcess("p")
	tr.Complete(0, "c", "n", 5, 4, nil)
	ev := tr.Events()[1]
	if *ev.Dur != 0 {
		t.Errorf("backwards span dur = %g, want 0", *ev.Dur)
	}
}

func TestHubAttach(t *testing.T) {
	h := New()
	if h.Now() != 0 {
		t.Error("unattached hub clock should read 0")
	}
	h.Metrics.Gauge("g", "", nil).Set(1) // safe before attach
	clock := 42.0
	h.Attach(func() float64 { return clock }, "policy-A")
	if h.Now() != 42 {
		t.Errorf("Now = %g, want 42", h.Now())
	}
	if h.Trace.Len() != 2 {
		t.Errorf("attach should emit process+thread metadata, got %d events", h.Trace.Len())
	}
	h.Attach(func() float64 { return clock }, "policy-B")
	evs := h.Trace.Events()
	if evs[2].Pid != 2 {
		t.Errorf("second attach should open pid 2, got %d", evs[2].Pid)
	}
	var nh *Hub
	nh.Attach(nil, "x") // nil hub is a no-op
	if nh.Now() != 0 {
		t.Error("nil hub Now should read 0")
	}
}
