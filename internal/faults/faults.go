// Package faults is a deterministic, seeded fault-injection layer for the
// simulated serving system. Faults are scheduled on the same discrete-event
// engine as everything else, so a faulted run is exactly as reproducible as
// a clean one: same seed, same schedule, same byte-identical results.
//
// Three fault classes cover the failure surface the online scheduler
// (§III-D) must degrade gracefully against:
//
//   - Link faults: an Ethernet/trunk link's capacity drops to a fraction of
//     nominal (LinkDegrade) or to zero (factor 0, a blackout), then
//     recovers. Flows crossing a blacked-out link stall; the scheduler sees
//     +Inf utilization on the link and prices out every policy crossing it.
//   - Switch faults: an aggregation switch loses aggregator slots to a
//     competing tenant (SlotExhaustion) — new synchronous INA jobs fall back
//     to ring — or reboots outright (SwitchReboot), wiping the data plane;
//     in-flight INA collectives complete via the ATP-style host-aggregation
//     fallback at a goodput penalty.
//   - Agent stalls: the GPU agents stop answering the control plane's
//     policy-table sync (AgentStall), so tables serve stale costs until the
//     stall clears.
//
// Schedules compose with background load (bursts, elephant lanes): both are
// just events on the engine. Overlapping degrade windows on one link nest
// (the link recovers when the last window ends, at the most severe factor
// seen while nested).
package faults

import (
	"fmt"
	"sort"

	"heroserve/internal/collective"
	"heroserve/internal/netsim"
	"heroserve/internal/sim"
	"heroserve/internal/telemetry"
	"heroserve/internal/topology"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// LinkDegrade scales an edge's capacity by Factor for Duration seconds
	// (Factor 0 = blackout).
	LinkDegrade Kind = iota
	// SlotExhaustion seizes Slots aggregator slots at Switch for Duration
	// seconds.
	SlotExhaustion
	// SwitchReboot takes Switch offline for Duration seconds, wiping its
	// data plane and demoting in-flight INA collectives to host aggregation.
	SwitchReboot
	// AgentStall suspends policy-table synchronization for Duration seconds.
	AgentStall
)

func (k Kind) String() string {
	switch k {
	case LinkDegrade:
		return "link-degrade"
	case SlotExhaustion:
		return "slot-exhaustion"
	case SwitchReboot:
		return "switch-reboot"
	case AgentStall:
		return "agent-stall"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault: it applies at At and reverts at At+Duration.
type Event struct {
	Kind     Kind
	At       float64 // simulated seconds
	Duration float64 // seconds until recovery

	Edge   topology.EdgeID // LinkDegrade
	Factor float64         // LinkDegrade: remaining capacity fraction in [0,1]

	Switch topology.NodeID // SlotExhaustion, SwitchReboot
	Slots  int             // SlotExhaustion: slots to seize
}

// Validate rejects structurally impossible events.
func (e *Event) Validate() error {
	if e.At < 0 || e.Duration <= 0 {
		return fmt.Errorf("faults: event %v at %g for %g: need At >= 0 and Duration > 0", e.Kind, e.At, e.Duration)
	}
	switch e.Kind {
	case LinkDegrade:
		if e.Factor < 0 || e.Factor >= 1 {
			return fmt.Errorf("faults: link-degrade factor %g outside [0, 1)", e.Factor)
		}
	case SlotExhaustion:
		if e.Slots <= 0 {
			return fmt.Errorf("faults: slot-exhaustion needs Slots > 0")
		}
	}
	return nil
}

// Schedule is an ordered set of fault events.
type Schedule struct {
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	for i := range s.Events {
		if err := s.Events[i].Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Staller is the control-plane hook an AgentStall event drives; implemented
// by scheduler.Controller.
type Staller interface {
	StallFor(seconds float64)
}

// Record is one applied fault, for telemetry and reports.
type Record struct {
	Event       Event
	AppliedAt   float64
	RecoveredAt float64 // At + Duration
}

// Injector arms a Schedule onto a live simulation. One Injector serves one
// (engine, network, comm) triple; build a fresh one per run.
type Injector struct {
	eng  *sim.Engine
	net  *netsim.Network
	comm *collective.Comm

	stallers []Staller
	// stallUntil lets stallers registered mid-window (the controller is
	// created lazily on the first all-reduce) pick up the remaining stall.
	stallUntil float64

	// linkDepth/linkFloor implement nested degrade windows per edge.
	linkDepth map[topology.EdgeID]int
	linkFloor map[topology.EdgeID]float64

	records []Record
	armed   int

	// Telemetry (nil when off). Injections and recoveries surface as trace
	// instants on the control-plane track plus a per-kind counter.
	tel         *telemetry.Hub
	telInjected [4]*telemetry.Counter // indexed by Kind
}

// SetTelemetry arms fault metrics and trace instants.
func (inj *Injector) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	inj.tel = h
	for k := LinkDegrade; k <= AgentStall; k++ {
		inj.telInjected[k] = h.Metrics.Counter("faults_injected_total",
			"Fault events applied, by kind.", []string{"kind"}, k.String())
	}
}

// instant emits a fault trace instant on the control-plane track.
func (inj *Injector) instant(name string, ev Event, args map[string]any) {
	if inj.tel == nil {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["duration"] = ev.Duration
	switch ev.Kind {
	case LinkDegrade:
		args["edge"] = int(ev.Edge)
		args["factor"] = ev.Factor
	case SlotExhaustion:
		args["switch"] = int(ev.Switch)
		args["slots"] = ev.Slots
	case SwitchReboot:
		args["switch"] = int(ev.Switch)
	}
	inj.tel.Trace.Instant(telemetry.ControlTID, "fault", name, args)
}

// NewInjector returns an injector over the network and (optionally nil)
// collective executor.
func NewInjector(net *netsim.Network, comm *collective.Comm) *Injector {
	return &Injector{
		eng:       net.Engine(),
		net:       net,
		comm:      comm,
		linkDepth: make(map[topology.EdgeID]int),
		linkFloor: make(map[topology.EdgeID]float64),
	}
}

// RegisterStaller subscribes a control-plane component to AgentStall events.
// A staller registered inside an active stall window inherits its remainder.
func (inj *Injector) RegisterStaller(s Staller) {
	inj.stallers = append(inj.stallers, s)
	if now := inj.eng.Now(); now < inj.stallUntil {
		s.StallFor(inj.stallUntil - now)
	}
}

// Arm schedules every event of the schedule on the engine. It panics on an
// invalid schedule: fault plans are experiment inputs, and a silently
// dropped fault would invalidate the measurement.
func (inj *Injector) Arm(s Schedule) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	for _, ev := range s.Events {
		ev := ev
		inj.armed++
		inj.eng.Schedule(ev.At, func() { inj.apply(ev) })
	}
}

// Armed returns the number of events scheduled so far.
func (inj *Injector) Armed() int { return inj.armed }

// Records returns the faults applied so far (in application order).
func (inj *Injector) Records() []Record {
	return append([]Record(nil), inj.records...)
}

// apply fires one event and schedules its recovery.
func (inj *Injector) apply(ev Event) {
	now := inj.eng.Now()
	inj.records = append(inj.records, Record{Event: ev, AppliedAt: now, RecoveredAt: now + ev.Duration})
	inj.telInjected[ev.Kind].Inc()
	inj.instant(ev.Kind.String(), ev, nil)
	switch ev.Kind {
	case LinkDegrade:
		inj.linkDepth[ev.Edge]++
		floor, nested := inj.linkFloor[ev.Edge]
		if !nested || ev.Factor < floor {
			floor = ev.Factor
			inj.linkFloor[ev.Edge] = floor
		}
		inj.net.SetLinkScale(ev.Edge, floor)
		inj.eng.After(ev.Duration, func() {
			inj.linkDepth[ev.Edge]--
			if inj.linkDepth[ev.Edge] <= 0 {
				delete(inj.linkDepth, ev.Edge)
				delete(inj.linkFloor, ev.Edge)
				inj.net.SetLinkScale(ev.Edge, 1)
				inj.instant(ev.Kind.String()+"-recovered", ev, nil)
			}
		})
	case SlotExhaustion:
		sw := inj.dataPlane(ev.Switch)
		if sw == nil {
			return
		}
		seized := sw.SeizeSlots(ev.Slots)
		inj.eng.After(ev.Duration, func() {
			sw.RestoreSlots(seized)
			inj.instant(ev.Kind.String()+"-recovered", ev, nil)
		})
	case SwitchReboot:
		sw := inj.dataPlane(ev.Switch)
		if sw == nil {
			return
		}
		sw.SetOnline(false)
		if inj.comm != nil {
			inj.comm.NotifySwitchFault(ev.Switch)
		}
		inj.eng.After(ev.Duration, func() {
			sw.SetOnline(true)
			inj.instant(ev.Kind.String()+"-recovered", ev, nil)
		})
	case AgentStall:
		if until := now + ev.Duration; until > inj.stallUntil {
			inj.stallUntil = until
		}
		for _, s := range inj.stallers {
			s.StallFor(ev.Duration)
		}
		if inj.tel != nil {
			// Recovery is passive (the stall window simply elapses), so the
			// instant fires only when no longer stall window is still open.
			// Scheduled only with telemetry armed: a telemetry-off run keeps
			// its exact pre-telemetry event sequence.
			inj.eng.After(ev.Duration, func() {
				if inj.eng.Now() >= inj.stallUntil {
					inj.instant(ev.Kind.String()+"-recovered", ev, nil)
				}
			})
		}
	}
}

// dataPlane resolves the switch data plane a switch fault targets.
func (inj *Injector) dataPlane(node topology.NodeID) interface {
	SeizeSlots(int) int
	RestoreSlots(int) int
	SetOnline(bool)
} {
	if inj.comm == nil {
		return nil
	}
	if sw := inj.comm.Switch(node); sw != nil {
		return sw
	}
	return nil
}

// --- Schedule builders ---

// splitmix is the repo's standard seeded PRNG step (identical to the
// generators in serving's background-traffic injectors).
type splitmix uint64

func newSplitmix(seed int64) *splitmix {
	s := splitmix(uint64(seed)*0x9e3779b97f4a7c15 + 1)
	return &s
}

func (s *splitmix) next() uint64 {
	*s = *s*2862933555777941757 + 3037000493
	return uint64(*s) >> 11
}

func (s *splitmix) intn(n int) int { return int(s.next() % uint64(n)) }

func (s *splitmix) float() float64 { return float64(s.next()%1_000_000) / 1_000_000 }

// RandomConfig parameterizes RandomSchedule.
type RandomConfig struct {
	// LinkFaults is the number of Ethernet/trunk degrade windows (every other
	// one is a full blackout).
	LinkFaults int
	// SwitchFaults is the number of switch faults (alternating slot
	// exhaustion and reboot over the INA-capable switches).
	SwitchFaults int
	// AgentStalls is the number of control-plane stall windows.
	AgentStalls int
	// MeanDuration is the average fault duration in seconds (actual
	// durations span [0.5, 1.5] x mean).
	MeanDuration float64
	// DegradeFactor is the residual capacity of a non-blackout link fault.
	DegradeFactor float64
}

// DefaultRandomConfig sizes a schedule that visibly stresses a serving run
// of the given horizon without making the fabric unusable.
func DefaultRandomConfig(horizon float64) RandomConfig {
	return RandomConfig{
		LinkFaults:    12,
		SwitchFaults:  2,
		AgentStalls:   2,
		MeanDuration:  horizon / 2,
		DegradeFactor: 0.05,
	}
}

// RandomSchedule draws a deterministic schedule over [0, horizon) from the
// seed: link faults target the serving fabric's inter-server links (GPU
// uplinks and switch trunks; NVLink stays healthy — intra-server fabrics are
// not the failure domain under study, and host uplinks carry no serving
// traffic), switch faults target INA-capable switches.
func RandomSchedule(g *topology.Graph, horizon float64, seed int64, cfg RandomConfig) Schedule {
	rng := newSplitmix(seed)
	var ethernet []topology.EdgeID
	for i := 0; i < g.NumEdges(); i++ {
		eid := topology.EdgeID(i)
		e := g.Edge(eid)
		if e.Kind != topology.LinkEthernet && e.Kind != topology.LinkTrunk {
			continue
		}
		if g.Node(e.A).Kind == topology.KindHost || g.Node(e.B).Kind == topology.KindHost {
			continue
		}
		ethernet = append(ethernet, eid)
	}
	var inaSwitches []topology.NodeID
	for _, sw := range g.Switches() {
		if g.Node(sw).INASlots > 0 {
			inaSwitches = append(inaSwitches, sw)
		}
	}
	dur := func() float64 { return cfg.MeanDuration * (0.5 + rng.float()) }
	at := func() float64 { return horizon * 0.8 * rng.float() }

	var s Schedule
	for i := 0; i < cfg.LinkFaults && len(ethernet) > 0; i++ {
		factor := cfg.DegradeFactor
		if i%2 == 1 {
			factor = 0 // every other link fault is a blackout
		}
		s.Events = append(s.Events, Event{
			Kind: LinkDegrade, At: at(), Duration: dur(),
			Edge: ethernet[rng.intn(len(ethernet))], Factor: factor,
		})
	}
	for i := 0; i < cfg.SwitchFaults && len(inaSwitches) > 0; i++ {
		sw := inaSwitches[rng.intn(len(inaSwitches))]
		if i%2 == 0 {
			s.Events = append(s.Events, Event{
				Kind: SlotExhaustion, At: at(), Duration: dur(),
				Switch: sw, Slots: g.Node(sw).INASlots,
			})
		} else {
			s.Events = append(s.Events, Event{
				Kind: SwitchReboot, At: at(), Duration: dur(), Switch: sw,
			})
		}
	}
	for i := 0; i < cfg.AgentStalls; i++ {
		s.Events = append(s.Events, Event{Kind: AgentStall, At: at(), Duration: dur()})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}
