package faults

import (
	"math"
	"reflect"
	"testing"

	"heroserve/internal/collective"
	"heroserve/internal/netsim"
	"heroserve/internal/sim"
	"heroserve/internal/topology"
)

// testbedNet builds a network plus collective executor over the paper's
// testbed topology.
func testbedNet(t *testing.T) (*netsim.Network, *collective.Comm, *sim.Engine) {
	t.Helper()
	g := topology.Testbed()
	eng := sim.NewEngine()
	net := netsim.New(g, eng)
	comm := collective.NewComm(net, collective.NewStaticRouter(g))
	return net, comm, eng
}

// gpuUplink returns the Ethernet uplink edge of a GPU node.
func gpuUplink(t *testing.T, g *topology.Graph, gpu topology.NodeID) topology.EdgeID {
	t.Helper()
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(topology.EdgeID(i))
		if e.Kind == topology.LinkEthernet && (e.A == gpu || e.B == gpu) {
			return e.ID
		}
	}
	t.Fatalf("gpu %d has no Ethernet uplink", gpu)
	return -1
}

func TestLinkDegradeAppliesAndRecovers(t *testing.T) {
	net, comm, eng := testbedNet(t)
	eid := gpuUplink(t, net.Graph(), net.Graph().GPUs()[0])

	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: LinkDegrade, At: 1, Duration: 2, Edge: eid, Factor: 0.25},
	}})
	if inj.Armed() != 1 {
		t.Fatalf("armed %d events, want 1", inj.Armed())
	}

	var during, after float64
	eng.Schedule(2, func() { during = net.LinkScale(eid) })
	eng.Schedule(3.5, func() { after = net.LinkScale(eid) })
	eng.Run()

	if during != 0.25 {
		t.Fatalf("mid-window scale %g, want 0.25", during)
	}
	if after != 1 {
		t.Fatalf("post-window scale %g, want 1", after)
	}
	recs := inj.Records()
	if len(recs) != 1 || recs[0].AppliedAt != 1 || recs[0].RecoveredAt != 3 {
		t.Fatalf("records %+v", recs)
	}
}

func TestNestedLinkWindowsRecoverAtLastEnd(t *testing.T) {
	net, comm, eng := testbedNet(t)
	eid := gpuUplink(t, net.Graph(), net.Graph().GPUs()[0])

	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: LinkDegrade, At: 1, Duration: 4, Edge: eid, Factor: 0.5},
		{Kind: LinkDegrade, At: 2, Duration: 1, Edge: eid, Factor: 0},
	}})

	samples := map[float64]float64{}
	for _, at := range []float64{1.5, 2.5, 3.5, 5.5} {
		at := at
		eng.Schedule(at, func() { samples[at] = net.LinkScale(eid) })
	}
	eng.Run()

	// The nested blackout deepens the degradation; the link stays at the
	// most severe factor until the last window ends.
	want := map[float64]float64{1.5: 0.5, 2.5: 0, 3.5: 0, 5.5: 1}
	if !reflect.DeepEqual(samples, want) {
		t.Fatalf("scale samples %v, want %v", samples, want)
	}
}

func TestBlackoutStallsFlowUntilRecovery(t *testing.T) {
	net, comm, eng := testbedNet(t)
	g := net.Graph()
	gpu := g.GPUs()[0]
	eid := gpuUplink(t, g, gpu)
	e := g.Edge(eid)
	sw := e.A
	if sw == gpu {
		sw = e.B
	}

	// 125 MB over a 12.5 GB/s uplink: 10 ms of serialization.
	const bytes = 125_000_000
	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: LinkDegrade, At: 0.005, Duration: 1, Edge: eid, Factor: 0},
	}})

	var doneAt float64 = -1
	path := topology.Path{Nodes: []topology.NodeID{gpu, sw}, Edges: []topology.EdgeID{eid}}
	net.StartFlow(path, bytes, func(*netsim.Flow) { doneAt = eng.Now() })

	var utilDuring float64
	eng.Schedule(0.5, func() { utilDuring = net.EdgeUtilization(eid) })
	eng.Run()

	if !math.IsInf(utilDuring, 1) {
		t.Fatalf("blacked-out link utilization %g, want +Inf", utilDuring)
	}
	// Half the flow serialized before the blackout; the rest waits for
	// recovery at t=1.005: finish at 1.005 + 0.005 (plus link latency).
	if doneAt < 1.005 || doneAt > 1.02 {
		t.Fatalf("flow finished at %g, want stalled past blackout until ~1.01", doneAt)
	}
	if net.LinkDown(eid) {
		t.Fatal("link still down after recovery")
	}
}

func TestSlotExhaustionSeizesAndRestores(t *testing.T) {
	net, comm, eng := testbedNet(t)
	sw := net.Graph().Switches()[0]
	ds := comm.Switch(sw)
	pool := ds.PoolSize()

	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: SlotExhaustion, At: 1, Duration: 2, Switch: sw, Slots: pool},
	}})

	var seizedDuring, freeDuring, freeAfter int
	eng.Schedule(2, func() { seizedDuring, freeDuring = ds.SeizedSlots(), ds.FreeSlots() })
	eng.Schedule(4, func() { freeAfter = ds.FreeSlots() })
	eng.Run()

	if seizedDuring != pool || freeDuring != 0 {
		t.Fatalf("during exhaustion: seized %d free %d, want %d/0", seizedDuring, freeDuring, pool)
	}
	if freeAfter != pool {
		t.Fatalf("after restore: free %d, want %d", freeAfter, pool)
	}
}

func TestSwitchRebootDemotesInflightINA(t *testing.T) {
	net, comm, eng := testbedNet(t)
	g := net.Graph()
	sw := g.Switches()[0]

	// Two leaders on different servers, both uplinked to switch 0.
	group := []topology.NodeID{g.GPUs()[0], g.GPUs()[4]}
	var cleanDone, faultDone float64

	// Reference run on a healthy data plane (fresh fabric, same shape).
	_, refComm, refEng := testbedNet(t)
	refComm.INAAllReduce(group, sw, 64<<20, 1, 0, func() { cleanDone = refEng.Now() })
	refEng.Run()

	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: SwitchReboot, At: cleanDone / 2, Duration: 0.2, Switch: sw},
	}})
	comm.INAAllReduce(group, sw, 64<<20, 1, 0, func() { faultDone = eng.Now() })
	eng.Run()

	if got := comm.Counters().FaultFallbacks; got != 1 {
		t.Fatalf("FaultFallbacks %d, want 1", got)
	}
	if faultDone <= cleanDone {
		t.Fatalf("rebooted op finished at %g, not slower than clean %g", faultDone, cleanDone)
	}
	ds := comm.Switch(sw)
	if !ds.Online() {
		t.Fatal("switch still offline after reboot window")
	}
}

func TestSwitchOfflineRejectsNewINA(t *testing.T) {
	net, comm, eng := testbedNet(t)
	g := net.Graph()
	sw := g.Switches()[0]
	group := []topology.NodeID{g.GPUs()[0], g.GPUs()[4]}

	inj := NewInjector(net, comm)
	inj.Arm(Schedule{Events: []Event{
		{Kind: SwitchReboot, At: 0.5, Duration: 10, Switch: sw},
	}})
	// Start an INA op while the switch is down: it must fall back to ring.
	eng.Schedule(1, func() {
		comm.INAAllReduce(group, sw, 1<<20, 1, 0, func() {})
	})
	eng.Run()

	c := comm.Counters()
	if c.SlotFallbacks != 1 || c.RingOps != 1 {
		t.Fatalf("counters %+v, want 1 slot fallback ring op", c)
	}
}

// stubStaller records StallFor calls.
type stubStaller struct{ got []float64 }

func (s *stubStaller) StallFor(d float64) { s.got = append(s.got, d) }

func TestAgentStallDrivesStallers(t *testing.T) {
	net, comm, eng := testbedNet(t)
	inj := NewInjector(net, comm)

	early := &stubStaller{}
	inj.RegisterStaller(early)
	inj.Arm(Schedule{Events: []Event{
		{Kind: AgentStall, At: 1, Duration: 4},
	}})

	// A staller registered mid-window (the lazily created controller)
	// inherits the remaining stall.
	late := &stubStaller{}
	eng.Schedule(3, func() { inj.RegisterStaller(late) })
	eng.Run()

	if !reflect.DeepEqual(early.got, []float64{4}) {
		t.Fatalf("early staller calls %v, want [4]", early.got)
	}
	if !reflect.DeepEqual(late.got, []float64{2}) {
		t.Fatalf("late staller calls %v, want [2] (remaining window)", late.got)
	}
}

func TestArmPanicsOnInvalidSchedule(t *testing.T) {
	net, comm, _ := testbedNet(t)
	inj := NewInjector(net, comm)
	defer func() {
		if recover() == nil {
			t.Fatal("Arm accepted an invalid schedule")
		}
	}()
	inj.Arm(Schedule{Events: []Event{{Kind: LinkDegrade, At: 0, Duration: -1}}})
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"good degrade", Event{Kind: LinkDegrade, At: 1, Duration: 1, Factor: 0.5}, true},
		{"blackout", Event{Kind: LinkDegrade, At: 0, Duration: 1, Factor: 0}, true},
		{"negative at", Event{Kind: LinkDegrade, At: -1, Duration: 1}, false},
		{"zero duration", Event{Kind: AgentStall, At: 1, Duration: 0}, false},
		{"factor one", Event{Kind: LinkDegrade, At: 1, Duration: 1, Factor: 1}, false},
		{"no slots", Event{Kind: SlotExhaustion, At: 1, Duration: 1, Slots: 0}, false},
		{"good seize", Event{Kind: SlotExhaustion, At: 1, Duration: 1, Slots: 8}, true},
		{"good reboot", Event{Kind: SwitchReboot, At: 1, Duration: 1}, true},
	}
	for _, c := range cases {
		if err := c.ev.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRandomScheduleDeterministicAndSane(t *testing.T) {
	g := topology.Testbed()
	cfg := DefaultRandomConfig(20)
	a := RandomSchedule(g, 20, 7, cfg)
	b := RandomSchedule(g, 20, 7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := RandomSchedule(g, 20, 8, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(a.Events) != cfg.LinkFaults+cfg.SwitchFaults+cfg.AgentStalls {
		t.Fatalf("got %d events, want %d", len(a.Events), cfg.LinkFaults+cfg.SwitchFaults+cfg.AgentStalls)
	}
	for i, ev := range a.Events {
		if i > 0 && ev.At < a.Events[i-1].At {
			t.Fatal("events not sorted by time")
		}
		if ev.At < 0 || ev.At >= 20 {
			t.Fatalf("event %d at %g outside horizon", i, ev.At)
		}
		if ev.Kind == LinkDegrade {
			e := g.Edge(ev.Edge)
			if e.Kind != topology.LinkEthernet && e.Kind != topology.LinkTrunk {
				t.Fatalf("link fault targets %v link", e.Kind)
			}
			if g.Node(e.A).Kind == topology.KindHost || g.Node(e.B).Kind == topology.KindHost {
				t.Fatal("link fault targets a host uplink")
			}
		}
	}
}
