// Package model captures the LLM side of the paper's system model: model
// configurations (OPT family, LLaMA-3-70B), GPU specifications, memory
// accounting for weights and KV cache, communication volumes of
// tensor-parallel synchronization, and the computation latency model of
// Eq. 12–13 with constants C1..C6 obtained the way the paper obtains them —
// profiling plus least-squares interpolation (here against a synthetic
// roofline GPU standing in for hardware).
package model

import "fmt"

// BytesPerParam is the FP16 weight precision used in all of the paper's
// experiments.
const BytesPerParam = 2

// BytesPerActivation is the FP16 activation element size used for
// synchronization traffic.
const BytesPerActivation = 2

// Config describes a Transformer decoder model (paper Table I symbols in
// comments).
type Config struct {
	Name      string
	Layers    int // L
	Hidden    int // h
	Heads     int // A
	FFN       int // m, intermediate size
	Vocab     int
	BlockSize int // b, attention-kernel block size
}

// OPT13B returns the OPT-13B configuration.
func OPT13B() Config {
	return Config{Name: "OPT-13B", Layers: 40, Hidden: 5120, Heads: 40, FFN: 20480, Vocab: 50272, BlockSize: 64}
}

// OPT66B returns the OPT-66B configuration (testbed model, §V).
func OPT66B() Config {
	return Config{Name: "OPT-66B", Layers: 64, Hidden: 9216, Heads: 72, FFN: 36864, Vocab: 50272, BlockSize: 64}
}

// OPT175B returns the OPT-175B configuration (simulation model, §V).
func OPT175B() Config {
	return Config{Name: "OPT-175B", Layers: 96, Hidden: 12288, Heads: 96, FFN: 49152, Vocab: 50272, BlockSize: 64}
}

// LLaMA3_70B returns the LLaMA-3-70B configuration used in Fig. 1.
func LLaMA3_70B() Config {
	return Config{Name: "LLaMA-3-70B", Layers: 80, Hidden: 8192, Heads: 64, FFN: 28672, Vocab: 128256, BlockSize: 64}
}

// Validate reports a descriptive error for nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %q: Layers must be positive", c.Name)
	case c.Hidden <= 0:
		return fmt.Errorf("model %q: Hidden must be positive", c.Name)
	case c.Heads <= 0 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %q: Heads must divide Hidden", c.Name)
	case c.FFN <= 0:
		return fmt.Errorf("model %q: FFN must be positive", c.Name)
	case c.BlockSize <= 0:
		return fmt.Errorf("model %q: BlockSize must be positive", c.Name)
	}
	return nil
}

// NumParams returns the approximate parameter count: per-layer attention
// (4h^2) and FFN (2hm) weights plus the embedding/unembedding matrices.
func (c Config) NumParams() int64 {
	perLayer := int64(4)*int64(c.Hidden)*int64(c.Hidden) + int64(2)*int64(c.Hidden)*int64(c.FFN)
	return int64(c.Layers)*perLayer + int64(2)*int64(c.Vocab)*int64(c.Hidden)
}

// ParamBytes returns R (Table I): total weight bytes at FP16.
func (c Config) ParamBytes() int64 {
	return c.NumParams() * BytesPerParam
}

// WeightBytesPerGPU returns the per-GPU weight footprint when sharded over
// ptens tensor ways and ppipe pipeline stages.
func (c Config) WeightBytesPerGPU(ptens, ppipe int) int64 {
	if ptens <= 0 || ppipe <= 0 {
		panic(fmt.Sprintf("model: invalid parallelism %dx%d", ptens, ppipe))
	}
	return c.ParamBytes() / int64(ptens) / int64(ppipe)
}

// KVBytesPerToken returns the KV-cache bytes one token occupies across the
// whole model: 2 tensors (K and V) x L layers x h elements x FP16.
func (c Config) KVBytesPerToken() int64 {
	return 2 * int64(c.Layers) * int64(c.Hidden) * BytesPerParam
}

// KVBytesPerTokenPerGPU returns a single GPU's share of the KV cache per
// token under (ptens, ppipe) sharding.
func (c Config) KVBytesPerTokenPerGPU(ptens, ppipe int) int64 {
	return c.KVBytesPerToken() / int64(ptens) / int64(ppipe)
}

// SyncBytes returns the data volume of one tensor-parallel synchronization
// step for kin batched tokens: D_col(a) = D_col(f) = K_in * h activation
// elements (paper §III-C2) at FP16. Each layer performs two such steps
// (attention output and FFN output).
func (c Config) SyncBytes(kin int64) int64 {
	return kin * int64(c.Hidden) * BytesPerActivation
}

// SyncStepsPerPass returns the number of tensor-parallel synchronization
// steps in one forward pass: two per layer (S in Eq. 5).
func (c Config) SyncStepsPerPass() int {
	return 2 * c.Layers
}

// PipelineActivationBytes returns the activation volume handed between
// adjacent pipeline stages for kin tokens: K_in * h elements at FP16 (the
// T_pp transfer of Eq. 6).
func (c Config) PipelineActivationBytes(kin int64) int64 {
	return kin * int64(c.Hidden) * BytesPerActivation
}

// KVTransferBytes returns the total KV-cache volume migrated from the
// prefill cluster to the decode cluster for a batch with kin total input
// tokens (Eq. 15's sum over layers and tensor segments).
func (c Config) KVTransferBytes(kin int64) int64 {
	return c.KVBytesPerToken() * kin
}

// MinGPUs returns the minimum number of GPUs needed to hold the weights
// given a per-GPU usable memory budget (Alg. 1 step 1:
// R / (M_g * R_frac)), rounded up.
func (c Config) MinGPUs(usableBytesPerGPU int64) int {
	if usableBytesPerGPU <= 0 {
		panic("model: usable memory must be positive")
	}
	r := c.ParamBytes()
	n := r / usableBytesPerGPU
	if r%usableBytesPerGPU != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return int(n)
}
