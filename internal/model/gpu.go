package model

import "fmt"

// GPUSpec describes an accelerator's roofline: peak FP16 tensor throughput,
// HBM bandwidth, and an achievable-fraction derating. These stand in for the
// paper's physical A100/V100/L40 GPUs; the cost-model constants C1..C6 are
// fitted against the roofline exactly as the paper fits them against
// hardware profiles.
type GPUSpec struct {
	Name        string
	PeakFLOPS   float64 // FP16 tensor FLOP/s
	MemBW       float64 // HBM bytes/s
	MemoryBytes int64
	Efficiency  float64 // achievable fraction of peak in large GEMMs
}

// A100 returns the spec of an NVIDIA A100-40GB.
func A100() GPUSpec {
	return GPUSpec{Name: "A100", PeakFLOPS: 312e12, MemBW: 1555e9, MemoryBytes: 40 << 30, Efficiency: 0.62}
}

// V100 returns the spec of an NVIDIA V100-32GB.
func V100() GPUSpec {
	return GPUSpec{Name: "V100", PeakFLOPS: 125e12, MemBW: 900e9, MemoryBytes: 32 << 30, Efficiency: 0.55}
}

// L40 returns the spec of an NVIDIA L40-48GB (Fig. 1's second test GPU).
func L40() GPUSpec {
	return GPUSpec{Name: "L40", PeakFLOPS: 181e12, MemBW: 864e9, MemoryBytes: 48 << 30, Efficiency: 0.58}
}

// RTX2080Ti returns the spec of the simulation host's GPU (§V, simulation
// settings) — included for completeness.
func RTX2080Ti() GPUSpec {
	return GPUSpec{Name: "RTX2080Ti", PeakFLOPS: 26.9e12, MemBW: 616e9, MemoryBytes: 11 << 30, Efficiency: 0.5}
}

// GPUByName resolves a spec from the topology's GPUType strings.
func GPUByName(name string) (GPUSpec, error) {
	switch name {
	case "A100":
		return A100(), nil
	case "V100":
		return V100(), nil
	case "L40":
		return L40(), nil
	case "RTX2080Ti":
		return RTX2080Ti(), nil
	}
	return GPUSpec{}, fmt.Errorf("model: unknown GPU type %q", name)
}

// effFLOPS returns the achievable FLOP/s.
func (g GPUSpec) effFLOPS() float64 { return g.PeakFLOPS * g.Efficiency }

// Roofline "ground truth" used by the profiler. The shapes follow the same
// structural decomposition as Eq. 12–13 (that is what makes the linear fit
// work, exactly as on real hardware), with a fixed per-iteration overhead
// standing in for Python runtime and kernel-launch noise (C3/C6).
const (
	prefillOverhead = 8e-3 // seconds per prefill pass (framework overhead)
	decodeOverhead  = 2e-3 // seconds per decode iteration
	pipelineBubble  = 1e-3 // seconds per extra pipeline stage per iteration
)

// MeasurePrefill returns the simulated "measured" latency of a full prefill
// forward pass over all layers for a batch with kin total input tokens and
// kin2 the squared sum of per-request input lengths, sharded over ptens
// tensor-parallel GPUs. Prefill is compute-bound: GEMM time plus the
// quadratic attention term.
func (g GPUSpec) MeasurePrefill(c Config, kin, kin2 int64, ptens int) float64 {
	if ptens <= 0 {
		panic("model: ptens must be positive")
	}
	l := float64(c.Layers)
	h := float64(c.Hidden)
	m := float64(c.FFN)
	// GEMMs: 2 FLOPs per MAC; per layer (4h^2 + 2hm) MACs per token.
	gemmFLOPs := 2 * l * (4*h*h + 2*h*m) * float64(kin)
	// Attention: score+value MACs ~ 2*h per token pair; 3h*Kin2 matches the
	// paper's feature with the block-size divisor folded into the constant.
	attnFLOPs := 2 * l * 3 * h * float64(kin2) / float64(c.BlockSize)
	return (gemmFLOPs+attnFLOPs)/(float64(ptens)*g.effFLOPS()) + prefillOverhead
}

// MeasureDecode returns the simulated "measured" latency of one decode
// iteration (one token per sequence) for a batch whose KV history totals kin
// tokens, sharded over ptens x ppipe GPUs. Decode is memory-bound: every
// iteration streams the weight shard and the KV-cache shard from HBM.
func (g GPUSpec) MeasureDecode(c Config, kin int64, ptens, ppipe int) float64 {
	if ptens <= 0 || ppipe <= 0 {
		panic("model: parallelism must be positive")
	}
	l := float64(c.Layers)
	h := float64(c.Hidden)
	m := float64(c.FFN)
	// Weight streaming: per-layer (4h^2 + 2hm) params at FP16.
	weightBytes := l * (4*h*h + 2*h*m) * BytesPerParam
	// KV streaming: 3h per cached token (K, V reads + V-weighted write) at
	// FP16, matching the 3*h*K_in feature of Eq. 13.
	kvBytes := l * 3 * h * float64(kin) * BytesPerParam
	shard := float64(ptens * ppipe)
	t := (weightBytes+kvBytes)/(shard*g.MemBW) + decodeOverhead
	// Pipeline fill bubble (C6 in Eq. 13).
	t += float64(ppipe-1) * pipelineBubble
	return t
}
