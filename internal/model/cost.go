package model

import (
	"fmt"
	"math/rand"
)

// ComputeModel is the fitted computation-latency model of Eq. 12–13:
//
//	T_c^pre = C1/P_tens * (4h^2 K_in + 2hm K_in) + C2/(b P_tens) * 3h K_in2 + C3
//	T_c^dec = C4/(P_tens P_pipe) * (4h^2 + 2hm) + C5/(P_tens P_pipe) * 3h K_in + C6
//
// with C6 = C6Base + C6Fill*(P_pipe-1), splitting the paper's pipeline-fill
// overhead constant into its base and per-extra-stage parts (vpipe's fill
// model). Constants come from Fit: profiling + least-squares interpolation.
type ComputeModel struct {
	Config Config
	GPU    GPUSpec

	C1, C2, C3     float64
	C4, C5         float64
	C6Base, C6Fill float64
}

// prefillFeatures returns the Eq. 12 feature vector (without constants).
func (cm *ComputeModel) prefillFeatures(kin, kin2 int64, ptens int) (x1, x2 float64) {
	h := float64(cm.Config.Hidden)
	m := float64(cm.Config.FFN)
	b := float64(cm.Config.BlockSize)
	x1 = (4*h*h*float64(kin) + 2*h*m*float64(kin)) / float64(ptens)
	x2 = 3 * h * float64(kin2) / (b * float64(ptens))
	return x1, x2
}

// decodeFeatures returns the Eq. 13 feature vector.
func (cm *ComputeModel) decodeFeatures(kin int64, ptens, ppipe int) (y1, y2 float64) {
	h := float64(cm.Config.Hidden)
	m := float64(cm.Config.FFN)
	shard := float64(ptens * ppipe)
	y1 = (4*h*h + 2*h*m) / shard
	y2 = 3 * h * float64(kin) / shard
	return y1, y2
}

// Prefill returns T_c^pre in seconds for kin total input tokens, kin2 the
// squared sum of the batch's input lengths, and ptens tensor-parallel ways.
func (cm *ComputeModel) Prefill(kin, kin2 int64, ptens int) float64 {
	if ptens <= 0 {
		panic(fmt.Sprintf("model: ptens %d", ptens))
	}
	x1, x2 := cm.prefillFeatures(kin, kin2, ptens)
	return cm.C1*x1 + cm.C2*x2 + cm.C3
}

// Decode returns T_c^dec in seconds per output token for a batch whose KV
// history totals kin tokens, under ptens x ppipe sharding.
func (cm *ComputeModel) Decode(kin int64, ptens, ppipe int) float64 {
	if ptens <= 0 || ppipe <= 0 {
		panic(fmt.Sprintf("model: parallelism %dx%d", ptens, ppipe))
	}
	y1, y2 := cm.decodeFeatures(kin, ptens, ppipe)
	return cm.C4*y1 + cm.C5*y2 + cm.C6Base + cm.C6Fill*float64(ppipe-1)
}

// profileNoise is the relative amplitude of the deterministic measurement
// noise injected into profiled latencies, standing in for real-system jitter.
const profileNoise = 0.01

// Fit profiles the (config, GPU) pair over a grid of batch shapes and
// parallelism degrees against the roofline ground truth and fits C1..C6 by
// least squares — the paper's "profiling and interpolation approach".
func Fit(c Config, g GPUSpec) (*ComputeModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cm := &ComputeModel{Config: c, GPU: g}
	rng := rand.New(rand.NewSource(0x5eed))
	noise := func() float64 { return 1 + profileNoise*(2*rng.Float64()-1) }

	// Prefill profile: vary total tokens, batch splits (which move kin2
	// relative to kin), and tensor ways.
	var prows [][]float64
	var pobs []float64
	for _, kin := range []int64{128, 512, 1024, 2048, 4096, 8192, 16384} {
		for _, q := range []int64{1, 4, 8, 16} {
			if kin < q {
				continue
			}
			kin2 := (kin / q) * (kin / q) * q // Q equal-length requests
			for _, pt := range []int{1, 2, 4, 8} {
				x1, x2 := cm.prefillFeatures(kin, kin2, pt)
				prows = append(prows, []float64{x1, x2, 1})
				pobs = append(pobs, g.MeasurePrefill(c, kin, kin2, pt)*noise())
			}
		}
	}
	pc, err := LeastSquares(prows, pobs)
	if err != nil {
		return nil, fmt.Errorf("prefill fit: %w", err)
	}
	cm.C1, cm.C2, cm.C3 = pc[0], pc[1], pc[2]

	// Decode profile: vary KV history, tensor ways, pipeline stages.
	var drows [][]float64
	var dobs []float64
	for _, kin := range []int64{128, 1024, 4096, 16384, 65536} {
		for _, pt := range []int{1, 2, 4, 8} {
			for _, pp := range []int{1, 2, 4} {
				y1, y2 := cm.decodeFeatures(kin, pt, pp)
				drows = append(drows, []float64{y1, y2, float64(pp - 1), 1})
				dobs = append(dobs, g.MeasureDecode(c, kin, pt, pp)*noise())
			}
		}
	}
	dc, err := LeastSquares(drows, dobs)
	if err != nil {
		return nil, fmt.Errorf("decode fit: %w", err)
	}
	cm.C4, cm.C5, cm.C6Fill, cm.C6Base = dc[0], dc[1], dc[2], dc[3]
	return cm, nil
}

// MustFit is Fit that panics on error, for presets known to be valid.
func MustFit(c Config, g GPUSpec) *ComputeModel {
	cm, err := Fit(c, g)
	if err != nil {
		panic(err)
	}
	return cm
}
