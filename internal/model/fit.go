package model

import (
	"errors"
	"math"
)

// LeastSquares solves min ||A x - b||_2 via the normal equations with
// Gaussian elimination and partial pivoting. A is given row-major: rows
// observations, cols features. It returns an error when the system is
// (numerically) singular, which for our profiling grids indicates a
// degenerate feature set.
func LeastSquares(rows [][]float64, b []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("model: no observations")
	}
	n := len(rows[0])
	if n == 0 {
		return nil, errors.New("model: no features")
	}
	if len(b) != len(rows) {
		return nil, errors.New("model: rows/targets length mismatch")
	}
	for _, r := range rows {
		if len(r) != n {
			return nil, errors.New("model: ragged feature matrix")
		}
	}

	// Normal equations: M = A^T A (n x n), v = A^T b.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
	}
	for r, row := range rows {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m[i][j] += row[i] * row[j]
			}
			m[i][n] += row[i] * b[r]
		}
	}

	// Gaussian elimination with partial pivoting on the augmented matrix.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-30 {
			return nil, errors.New("model: singular normal equations")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}

	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, nil
}
