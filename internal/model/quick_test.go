package model

import (
	"math/rand"
	"testing"
)

// Property tests over the cost and memory models.

func TestQuickPrefillMonotoneInTokens(t *testing.T) {
	cm := MustFit(OPT13B(), A100())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		kin := int64(rng.Intn(8000) + 16)
		extra := int64(rng.Intn(4000) + 1)
		pt := []int{1, 2, 4, 8}[rng.Intn(4)]
		kin2a := kin * kin / 4
		kin2b := (kin + extra) * (kin + extra) / 4
		a := cm.Prefill(kin, kin2a, pt)
		b := cm.Prefill(kin+extra, kin2b, pt)
		if b <= a {
			t.Fatalf("prefill not monotone: T(%d)=%g >= T(%d)=%g", kin, a, kin+extra, b)
		}
	}
}

func TestQuickDecodeMonotoneInHistory(t *testing.T) {
	cm := MustFit(OPT66B(), V100())
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		kv := int64(rng.Intn(60000) + 16)
		extra := int64(rng.Intn(30000) + 1)
		pt := []int{2, 4, 8}[rng.Intn(3)]
		pp := []int{1, 2}[rng.Intn(2)]
		if cm.Decode(kv+extra, pt, pp) <= cm.Decode(kv, pt, pp) {
			t.Fatalf("decode not monotone in KV history")
		}
	}
}

func TestQuickTensorParallelismNeverHurtsPrefill(t *testing.T) {
	cm := MustFit(OPT66B(), A100())
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		kin := int64(rng.Intn(8000) + 64)
		kin2 := kin * kin / 8
		for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
			if cm.Prefill(kin, kin2, pair[1]) >= cm.Prefill(kin, kin2, pair[0]) {
				t.Fatalf("prefill TP=%d not faster than TP=%d at kin=%d", pair[1], pair[0], kin)
			}
		}
	}
}

func TestQuickWeightShardingConserves(t *testing.T) {
	for _, cfg := range []Config{OPT13B(), OPT66B(), OPT175B(), LLaMA3_70B()} {
		total := cfg.ParamBytes()
		for _, pt := range []int{1, 2, 4, 8} {
			for _, pp := range []int{1, 2, 4} {
				shard := cfg.WeightBytesPerGPU(pt, pp)
				recon := shard * int64(pt) * int64(pp)
				// Integer division may drop at most (pt*pp - 1) bytes.
				if recon > total || total-recon >= int64(pt*pp) {
					t.Fatalf("%s %dx%d: shards reconstruct to %d of %d", cfg.Name, pt, pp, recon, total)
				}
			}
		}
	}
}

func TestQuickKVScalesLinearlyInTokens(t *testing.T) {
	cfg := OPT66B()
	if cfg.KVTransferBytes(100)*3 != cfg.KVTransferBytes(300) {
		t.Error("KV transfer not linear in tokens")
	}
	if cfg.SyncBytes(100)*7 != cfg.SyncBytes(700) {
		t.Error("sync bytes not linear in tokens")
	}
}

func TestQuickFitStableAcrossGPUs(t *testing.T) {
	// All fitted constants must be non-negative (they are physical times
	// per feature unit) across every (model, GPU) combination.
	for _, cfg := range []Config{OPT13B(), OPT66B(), OPT175B()} {
		for _, g := range []GPUSpec{A100(), V100(), L40(), RTX2080Ti()} {
			cm := MustFit(cfg, g)
			for name, c := range map[string]float64{
				"C1": cm.C1, "C2": cm.C2, "C4": cm.C4, "C5": cm.C5,
			} {
				if c <= 0 {
					t.Errorf("%s on %s: %s = %g, want positive", cfg.Name, g.Name, name, c)
				}
			}
			// The intercepts absorb noise but must stay near the configured
			// overheads (well under a second).
			if cm.C3 < 0 || cm.C3 > 0.1 {
				t.Errorf("%s on %s: C3 = %g out of range", cfg.Name, g.Name, cm.C3)
			}
		}
	}
}
