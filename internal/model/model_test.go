package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Config{OPT13B(), OPT66B(), OPT175B(), LLaMA3_70B()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "no-layers", Hidden: 8, Heads: 2, FFN: 32, BlockSize: 4},
		{Name: "no-hidden", Layers: 2, Heads: 2, FFN: 32, BlockSize: 4},
		{Name: "heads", Layers: 2, Hidden: 10, Heads: 3, FFN: 32, BlockSize: 4},
		{Name: "no-ffn", Layers: 2, Hidden: 8, Heads: 2, BlockSize: 4},
		{Name: "no-block", Layers: 2, Hidden: 8, Heads: 2, FFN: 32},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", c.Name)
		}
	}
}

func TestParamCountsMatchNames(t *testing.T) {
	cases := []struct {
		cfg     Config
		billion float64
	}{
		{OPT13B(), 13}, {OPT66B(), 66}, {OPT175B(), 175}, {LLaMA3_70B(), 70},
	}
	for _, c := range cases {
		got := float64(c.cfg.NumParams()) / 1e9
		if got < c.billion*0.85 || got > c.billion*1.25 {
			t.Errorf("%s: %0.1fB params, want ~%gB", c.cfg.Name, got, c.billion)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := OPT66B()
	// OPT-66B KV cache is famously ~2.4 MB/token at FP16.
	kv := c.KVBytesPerToken()
	if kv < 2_200_000 || kv > 2_500_000 {
		t.Errorf("KV bytes/token = %d, want ~2.36 MB", kv)
	}
	if got := c.KVBytesPerTokenPerGPU(4, 2); got != kv/8 {
		t.Errorf("sharded KV = %d, want %d", got, kv/8)
	}
	w := c.WeightBytesPerGPU(4, 2)
	if w != c.ParamBytes()/8 {
		t.Errorf("sharded weights = %d", w)
	}
	// 66B at FP16 = 132 GB: needs >= 4 x 40 GB GPUs even with full memory.
	if got := c.MinGPUs(40 << 30); got < 4 {
		t.Errorf("MinGPUs(40GB) = %d, want >= 4", got)
	}
	if got := OPT13B().MinGPUs(40 << 30); got != 1 {
		t.Errorf("OPT-13B MinGPUs = %d, want 1", got)
	}
}

func TestMinGPUsPanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	OPT66B().MinGPUs(0)
}

func TestSyncVolumes(t *testing.T) {
	c := OPT66B()
	if got := c.SyncBytes(1000); got != 1000*9216*2 {
		t.Errorf("SyncBytes = %d", got)
	}
	if got := c.SyncStepsPerPass(); got != 128 {
		t.Errorf("SyncStepsPerPass = %d, want 128 (2 x 64 layers)", got)
	}
	if got := c.PipelineActivationBytes(10); got != 10*9216*2 {
		t.Errorf("PipelineActivationBytes = %d", got)
	}
	if got := c.KVTransferBytes(100); got != c.KVBytesPerToken()*100 {
		t.Errorf("KVTransferBytes = %d", got)
	}
}

func TestGPUByName(t *testing.T) {
	for _, name := range []string{"A100", "V100", "L40", "RTX2080Ti"} {
		g, err := GPUByName(name)
		if err != nil || g.Name != name {
			t.Errorf("GPUByName(%q) = %v, %v", name, g.Name, err)
		}
	}
	if _, err := GPUByName("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
}

func TestRooflineScaling(t *testing.T) {
	c := OPT66B()
	g := A100()
	// Prefill scales ~linearly down with tensor parallelism (minus overhead).
	t1 := g.MeasurePrefill(c, 8192, 8192*8192/8, 1)
	t4 := g.MeasurePrefill(c, 8192, 8192*8192/8, 4)
	if ratio := (t1 - prefillOverhead) / (t4 - prefillOverhead); math.Abs(ratio-4) > 0.01 {
		t.Errorf("prefill TP scaling ratio = %g, want 4", ratio)
	}
	// Decode is memory-bound: a V100 (slower HBM) must be slower than A100.
	dA := A100().MeasureDecode(c, 4096, 4, 1)
	dV := V100().MeasureDecode(c, 4096, 4, 1)
	if dV <= dA {
		t.Errorf("V100 decode %g should exceed A100 %g", dV, dA)
	}
	// More pipeline stages add fill bubble.
	d1 := g.MeasureDecode(c, 4096, 4, 1)
	d2 := g.MeasureDecode(c, 4096, 2, 2) // same shard count, one more stage
	if d2 <= d1 {
		t.Errorf("pipeline bubble missing: %g vs %g", d2, d1)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2a + 3b + 5
	rows := [][]float64{{1, 0, 1}, {0, 1, 1}, {1, 1, 1}, {2, 3, 1}}
	b := []float64{7, 8, 10, 18}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdeterminedNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows [][]float64
	var b []float64
	for i := 0; i < 200; i++ {
		a1 := rng.Float64() * 10
		a2 := rng.Float64() * 10
		rows = append(rows, []float64{a1, a2, 1})
		b = append(b, 1.5*a1-2*a2+4+rng.NormFloat64()*0.01)
	}
	x, err := LeastSquares(rows, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1.5, -2, 4} {
		if math.Abs(x[i]-want) > 0.05 {
			t.Errorf("x[%d] = %g, want ~%g", i, x[i], want)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("no features accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	// Singular: duplicate feature column.
	rows := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestFitRecoversRoofline(t *testing.T) {
	for _, g := range []GPUSpec{A100(), L40()} {
		cm := MustFit(OPT66B(), g)
		// Out-of-grid points: fitted model must track ground truth within a
		// few percent despite the injected profiling noise.
		cases := []struct {
			kin, kin2 int64
			pt        int
		}{
			{3000, 3000 * 3000 / 6, 2},
			{10000, 10000 * 10000 / 10, 4},
		}
		for _, c := range cases {
			got := cm.Prefill(c.kin, c.kin2, c.pt)
			want := g.MeasurePrefill(OPT66B(), c.kin, c.kin2, c.pt)
			if rel := math.Abs(got-want) / want; rel > 0.03 {
				t.Errorf("%s prefill(%d,%d,%d): %g vs %g (%.1f%%)", g.Name, c.kin, c.kin2, c.pt, got, want, rel*100)
			}
		}
		for _, kv := range []int64{2000, 30000} {
			got := cm.Decode(kv, 4, 2)
			want := g.MeasureDecode(OPT66B(), kv, 4, 2)
			if rel := math.Abs(got-want) / want; rel > 0.03 {
				t.Errorf("%s decode(%d): %g vs %g (%.1f%%)", g.Name, kv, got, want, rel*100)
			}
		}
	}
}

func TestFitRejectsBadConfig(t *testing.T) {
	if _, err := Fit(Config{Name: "bad"}, A100()); err == nil {
		t.Error("bad config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFit did not panic")
		}
	}()
	MustFit(Config{Name: "bad"}, A100())
}

func TestCostModelPanics(t *testing.T) {
	cm := MustFit(OPT13B(), A100())
	for _, fn := range []func(){
		func() { cm.Prefill(10, 100, 0) },
		func() { cm.Decode(10, 0, 1) },
		func() { cm.Decode(10, 1, 0) },
		func() { OPT13B().WeightBytesPerGPU(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestDecodeLatencyOrdersOfMagnitude(t *testing.T) {
	// Sanity: OPT-66B decode on 8 A100s should be tens of milliseconds per
	// token — the regime in which a 0.15 s TPOT SLA is meaningful.
	cm := MustFit(OPT66B(), A100())
	d := cm.Decode(4096, 4, 2)
	if d < 5e-3 || d > 100e-3 {
		t.Errorf("decode latency %g s out of plausible range", d)
	}
	p := cm.Prefill(8192, 8192*8192/8, 4)
	if p < 0.1 || p > 10 {
		t.Errorf("prefill latency %g s out of plausible range", p)
	}
}

func BenchmarkFitOPT66B(b *testing.B) {
	c := OPT66B()
	g := A100()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(c, g); err != nil {
			b.Fatal(err)
		}
	}
}
