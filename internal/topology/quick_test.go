package topology

import (
	"math"
	"math/rand"
	"testing"
)

// Property: every generated pod validates, has the expected GPU count, fully
// connected GPUs, and nonblocking-derated trunks per the oversubscription
// formula.
func TestQuickPodInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		cfg := PodConfig{
			Servers:         rng.Intn(20) + 1,
			Tracks:          []int{1, 2, 4, 8}[rng.Intn(4)],
			ServersPerGroup: []int{2, 4, 6, 16}[rng.Intn(4)],
		}
		g := Pod(cfg)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		if got := len(g.GPUs()); got != cfg.Servers*8 {
			t.Fatalf("trial %d: GPUs = %d, want %d", trial, got, cfg.Servers*8)
		}
		if g.NumServers() != cfg.Servers {
			t.Fatalf("trial %d: servers = %d", trial, g.NumServers())
		}
		// Every GPU reaches every other GPU through the fabric.
		gpus := g.GPUs()
		sp := g.Dijkstra(gpus[0], TransferCost(1<<20), nil)
		for _, id := range gpus {
			if math.IsInf(sp.Dist[id], 1) {
				t.Fatalf("trial %d: GPU %d unreachable", trial, id)
			}
		}
		// Every GPU has exactly one Ethernet uplink.
		for _, id := range gpus {
			eth := 0
			for _, eid := range g.Incident(id) {
				if g.Edge(eid).Kind == LinkEthernet {
					eth++
				}
			}
			if eth != 1 {
				t.Fatalf("trial %d: GPU %d has %d uplinks", trial, id, eth)
			}
		}
	}
}

// Property: round-tripping Available through drain/Reset is lossless, and
// Validate catches any out-of-range mutation.
func TestQuickAvailableInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := Testbed()
	for trial := 0; trial < 100; trial++ {
		eid := EdgeID(rng.Intn(g.NumEdges()))
		e := g.Edge(eid)
		e.Available = e.Capacity * rng.Float64()
		if err := g.Validate(); err != nil {
			t.Fatalf("in-range available rejected: %v", err)
		}
	}
	g.ResetAvailable()
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if e.Available != e.Capacity {
			t.Fatal("reset lost capacity")
		}
	}
}

// Property: path transfer time decomposes as sum of per-edge terms, and the
// bottleneck lower-bounds the implied bandwidth.
func TestQuickPathDecomposition(t *testing.T) {
	g := Pod2Tracks(4)
	gpus := g.GPUs()
	rng := rand.New(rand.NewSource(31))
	m := g.NewMatrix(gpus, TransferCost(1<<20), nil)
	for trial := 0; trial < 200; trial++ {
		a := gpus[rng.Intn(len(gpus))]
		b := gpus[rng.Intn(len(gpus))]
		p, ok := m.PathBetween(a, b)
		if !ok || p.Hops() == 0 {
			continue
		}
		size := int64(rng.Intn(1<<24) + 1)
		total := p.TransferTime(g, size)
		var sum float64
		for _, eid := range p.Edges {
			e := g.Edge(eid)
			sum += float64(size)/e.Available + e.Latency
		}
		if math.Abs(total-sum) > 1e-12 {
			t.Fatalf("transfer time decomposition broke: %g vs %g", total, sum)
		}
		bw := p.Bottleneck(g)
		if float64(size)/bw > total {
			t.Fatalf("bottleneck implies faster than total time")
		}
	}
}
