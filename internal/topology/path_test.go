package topology

import (
	"math"
	"math/rand"
	"testing"
)

func TestDijkstraLine(t *testing.T) {
	g, ids := line(t, 1e9, 2e9, 4e9)
	sp := g.Dijkstra(ids[0], TransferCost(1<<20), nil)
	p, ok := sp.PathTo(ids[3])
	if !ok {
		t.Fatal("unreachable")
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d, want 3", p.Hops())
	}
	wantDist := float64(1<<20)/1e9 + float64(1<<20)/2e9 + float64(1<<20)/4e9 + 3e-6
	if math.Abs(sp.Dist[ids[3]]-wantDist) > 1e-12 {
		t.Errorf("dist = %g, want %g", sp.Dist[ids[3]], wantDist)
	}
}

func TestDijkstraPicksFasterDetour(t *testing.T) {
	// a--b direct on a slow link; a--c--b via two fast links. For a large
	// message the detour wins; for size 0 the direct hop wins (fewer hops,
	// lower fixed latency).
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU, Server: 0})
	b := g.AddNode(Node{Kind: KindGPU, Server: 1})
	c := g.AddNode(Node{Kind: KindGPU, Server: 2})
	g.AddEdge(a, b, LinkEthernet, 1e9, 1e-6)
	g.AddEdge(a, c, LinkNVLink, 600e9, 1e-6)
	g.AddEdge(c, b, LinkNVLink, 600e9, 1e-6)

	sp := g.Dijkstra(a, TransferCost(64<<20), nil)
	p, _ := sp.PathTo(b)
	if p.Hops() != 2 {
		t.Errorf("large message: hops = %d, want detour via c", p.Hops())
	}
	sp0 := g.Dijkstra(a, TransferCost(0), nil)
	p0, _ := sp0.PathTo(b)
	if p0.Hops() != 1 {
		t.Errorf("zero-size message: hops = %d, want direct", p0.Hops())
	}
}

func TestDijkstraRelayRestriction(t *testing.T) {
	// a--x--b where x is forbidden as an intermediate: b unreachable.
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU, Server: 0})
	x := g.AddNode(Node{Kind: KindHost})
	b := g.AddNode(Node{Kind: KindGPU, Server: 1})
	g.AddEdge(a, x, LinkEthernet, 1e9, 0)
	g.AddEdge(x, b, LinkEthernet, 1e9, 0)

	allow := func(n NodeID) bool { return g.Node(n).Kind != KindHost }
	sp := g.Dijkstra(a, TransferCost(1), allow)
	if !math.IsInf(sp.Dist[b], 1) {
		t.Error("path through forbidden relay should be unreachable")
	}
	// x itself is still reachable as an endpoint.
	if math.IsInf(sp.Dist[x], 1) {
		t.Error("forbidden node should still be reachable as endpoint")
	}
}

func TestDijkstraZeroAvailableEdge(t *testing.T) {
	g, ids := line(t, 1e9)
	g.Edge(0).Available = 0
	sp := g.Dijkstra(ids[0], TransferCost(1), nil)
	if !math.IsInf(sp.Dist[ids[1]], 1) {
		t.Error("drained edge should be unusable")
	}
}

func TestPathToSelf(t *testing.T) {
	g, ids := line(t, 1e9)
	sp := g.Dijkstra(ids[0], TransferCost(1), nil)
	p, ok := sp.PathTo(ids[0])
	if !ok || p.Hops() != 0 || len(p.Nodes) != 1 {
		t.Errorf("self path = %+v, ok=%v", p, ok)
	}
}

func TestPathTransferTimeAndBottleneck(t *testing.T) {
	g, ids := line(t, 2e9, 1e9)
	sp := g.Dijkstra(ids[0], TransferCost(1<<20), nil)
	p, _ := sp.PathTo(ids[2])
	size := int64(1 << 20)
	want := float64(size)/2e9 + float64(size)/1e9 + 2e-6
	if got := p.TransferTime(g, size); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferTime = %g, want %g", got, want)
	}
	if got := p.Bottleneck(g); got != 1e9 {
		t.Errorf("Bottleneck = %g, want 1e9", got)
	}
	// Drained edge makes the transfer time infinite.
	g.Edge(1).Available = 0
	if !math.IsInf(p.TransferTime(g, size), 1) {
		t.Error("TransferTime over drained edge should be +Inf")
	}
	var empty Path
	if !math.IsInf(empty.Bottleneck(g), 1) {
		t.Error("empty path bottleneck should be +Inf")
	}
}

func TestMatrixSymmetricOnUndirectedGraph(t *testing.T) {
	g := Testbed()
	gpus := g.GPUs()
	m := g.NewMatrix(gpus, TransferCost(1<<20), nil)
	for _, a := range gpus {
		for _, b := range gpus {
			dab, dba := m.Dist(a, b), m.Dist(b, a)
			if math.Abs(dab-dba) > 1e-12 {
				t.Fatalf("asymmetric distance %v<->%v: %g vs %g", a, b, dab, dba)
			}
		}
	}
	if m.Dist(gpus[0], gpus[0]) != 0 {
		t.Error("self distance not zero")
	}
	out := NodeID(g.NumNodes() - 1) // a host, outside working set
	if !math.IsInf(m.Dist(gpus[0], out), 1) {
		t.Error("distance to node outside working set should be +Inf")
	}
	if _, ok := m.PathBetween(gpus[0], out); ok {
		t.Error("PathBetween outside working set should fail")
	}
	if !m.Contains(gpus[0]) || m.Contains(out) {
		t.Error("Contains wrong")
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over the
// matrix working set, and every returned path's recomputed cost matches the
// reported distance.
func TestQuickDijkstraInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := NewGraph()
		n := rng.Intn(12) + 3
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(Node{Kind: KindGPU, Server: i})
		}
		// Random connected-ish graph: a spanning chain plus random extras.
		for i := 1; i < n; i++ {
			g.AddEdge(ids[i-1], ids[i], LinkEthernet, 1e9*(rng.Float64()+0.1), 1e-6)
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(ids[a], ids[b], LinkEthernet, 1e9*(rng.Float64()+0.1), 1e-6)
			}
		}
		size := int64(rng.Intn(1<<22) + 1)
		cost := TransferCost(size)
		m := g.NewMatrix(ids, cost, nil)
		for _, a := range ids {
			for _, b := range ids {
				for _, c := range ids {
					if m.Dist(a, c) > m.Dist(a, b)+m.Dist(b, c)+1e-9 {
						t.Fatalf("triangle inequality violated")
					}
				}
				p, ok := m.PathBetween(a, b)
				if !ok {
					continue
				}
				var sum float64
				for _, eid := range p.Edges {
					sum += cost(g.Edge(eid))
				}
				if math.Abs(sum-m.Dist(a, b)) > 1e-9 {
					t.Fatalf("path cost %g != dist %g", sum, m.Dist(a, b))
				}
				// Path endpoints must match.
				if p.Nodes[0] != a || p.Nodes[len(p.Nodes)-1] != b {
					t.Fatalf("path endpoints wrong")
				}
			}
		}
	}
}

func BenchmarkDijkstraTestbed(b *testing.B) {
	g := Testbed()
	src := g.GPUs()[0]
	cost := TransferCost(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(src, cost, nil)
	}
}

func BenchmarkAllPairsPod(b *testing.B) {
	g := Pod2Tracks(12)
	gpus := g.GPUs()
	cost := TransferCost(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NewMatrix(gpus, cost, nil)
	}
}
