// Package topology models the heterogeneous cluster network of the paper: GPU
// and switch nodes joined by NVLink, PCIe, and Ethernet edges, each with a
// maximum capacity C and a currently-available bandwidth B (paper Table I).
// It provides Dijkstra shortest paths, the offline all-pairs latency matrix
// D(i,j) and path matrix P(k,a) used by the planner (Alg. 2), and builders
// for the paper's testbed (Fig. 6) and the 2tracks/8tracks simulation pods.
package topology

import (
	"fmt"
)

// NodeID indexes a node in a Graph. IDs are dense: 0..NumNodes-1.
type NodeID int

// EdgeID indexes an edge in a Graph. IDs are dense: 0..NumEdges-1.
type EdgeID int

// NodeKind classifies nodes.
type NodeKind uint8

const (
	// KindGPU is an accelerator with an RDMA NIC (GPU Direct), per §II-C.
	KindGPU NodeKind = iota
	// KindAccessSwitch is a programmable top-of-rack switch (Tofino in the
	// paper) capable of in-network aggregation.
	KindAccessSwitch
	// KindCoreSwitch is an aggregation/core switch, also INA-capable.
	KindCoreSwitch
	// KindHost is a non-GPU server (the parameter server / traffic replayer
	// in the testbed).
	KindHost
)

func (k NodeKind) String() string {
	switch k {
	case KindGPU:
		return "gpu"
	case KindAccessSwitch:
		return "access-switch"
	case KindCoreSwitch:
		return "core-switch"
	case KindHost:
		return "host"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// IsSwitch reports whether the kind is one of the switch kinds.
func (k NodeKind) IsSwitch() bool { return k == KindAccessSwitch || k == KindCoreSwitch }

// LinkKind classifies edges by physical technology.
type LinkKind uint8

const (
	// LinkEthernet is an inter-server RDMA-over-Ethernet link (100 Gb/s in
	// the paper's testbed).
	LinkEthernet LinkKind = iota
	// LinkNVLink is an intra-server GPU-to-GPU link.
	LinkNVLink
	// LinkPCIe is an intra-server fallback link (paper future work §VII).
	LinkPCIe
	// LinkTrunk is a switch-to-switch link.
	LinkTrunk
)

func (k LinkKind) String() string {
	switch k {
	case LinkEthernet:
		return "ethernet"
	case LinkNVLink:
		return "nvlink"
	case LinkPCIe:
		return "pcie"
	case LinkTrunk:
		return "trunk"
	}
	return fmt.Sprintf("LinkKind(%d)", uint8(k))
}

// Node is a vertex of the cluster graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string

	// GPU-only attributes (zero for switches/hosts).
	Server      int    // server index the GPU belongs to, -1 for non-GPUs
	NUMA        int    // NUMA domain within the server (0 when irrelevant)
	GPUType     string // e.g. "A100", "V100", "L40"
	MemoryBytes int64  // total HBM capacity
	FreeBytes   int64  // remaining memory M_g (Table I), mutated by placement

	// Switch-only attributes.
	INASlots int // aggregator slot capacity (0 = not INA-capable)
}

// Edge is an undirected link between two nodes.
type Edge struct {
	ID   EdgeID
	A, B NodeID
	Kind LinkKind

	// Capacity is the maximum bandwidth C(e) in bytes/second.
	Capacity float64
	// Available is the remaining bandwidth B(e) in bytes/second. Builders
	// initialize it to Capacity; the planner and scheduler mutate it.
	Available float64
	// Latency is the fixed per-traversal latency in seconds (propagation +
	// switching), independent of message size.
	Latency float64
}

// Other returns the endpoint of e opposite n. It panics if n is not an
// endpoint: callers hold an adjacency invariant, so violation is a bug.
func (e *Edge) Other(n NodeID) NodeID {
	switch n {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("topology: node %d not an endpoint of edge %d", n, e.ID))
}

// Graph is the cluster network. Modifications are append-only (AddNode,
// AddEdge); bandwidth fields of edges and memory fields of nodes are the only
// mutable state after construction.
type Graph struct {
	nodes []Node
	edges []Edge
	adj   [][]EdgeID // adjacency: node -> incident edge ids

	gpus     []NodeID
	switches []NodeID

	// servers maps server index -> GPU node ids on that server.
	servers map[int][]NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{servers: make(map[int][]NodeID)}
}

// AddNode appends a node and returns its id. The Server field of GPU nodes
// registers them in the per-server index; non-GPU callers should leave
// Server as anything (it is normalized to -1).
func (g *Graph) AddNode(n Node) NodeID {
	id := NodeID(len(g.nodes))
	n.ID = id
	if n.Kind != KindGPU {
		n.Server = -1
	}
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	switch {
	case n.Kind == KindGPU:
		g.gpus = append(g.gpus, id)
		g.servers[n.Server] = append(g.servers[n.Server], id)
	case n.Kind.IsSwitch():
		g.switches = append(g.switches, id)
	}
	return id
}

// AddEdge appends an undirected edge with Available initialized to Capacity
// and returns its id.
func (g *Graph) AddEdge(a, b NodeID, kind LinkKind, capacity, latency float64) EdgeID {
	if int(a) >= len(g.nodes) || int(b) >= len(g.nodes) || a < 0 || b < 0 {
		panic(fmt.Sprintf("topology: AddEdge endpoints %d-%d out of range", a, b))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self-loop on node %d", a))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{
		ID: id, A: a, B: b, Kind: kind,
		Capacity: capacity, Available: capacity, Latency: latency,
	})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns a pointer to the node with the given id (mutable).
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Edge returns a pointer to the edge with the given id (mutable).
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Incident returns the ids of edges incident to n. The slice is owned by the
// graph; callers must not modify it.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.adj[n] }

// GPUs returns the ids of all GPU nodes (graph-owned slice).
func (g *Graph) GPUs() []NodeID { return g.gpus }

// Switches returns the ids of all switch nodes (graph-owned slice).
func (g *Graph) Switches() []NodeID { return g.switches }

// ServerGPUs returns the GPU node ids on the given server (graph-owned).
func (g *Graph) ServerGPUs(server int) []NodeID { return g.servers[server] }

// NumServers returns the number of distinct GPU servers.
func (g *Graph) NumServers() int { return len(g.servers) }

// SameServer reports whether two GPU nodes live on the same server.
func (g *Graph) SameServer(a, b NodeID) bool {
	na, nb := g.Node(a), g.Node(b)
	return na.Kind == KindGPU && nb.Kind == KindGPU && na.Server == nb.Server
}

// EdgeBetween returns the id of an edge joining a and b, preferring the one
// with the largest available bandwidth when parallel edges exist. The second
// result reports whether any edge was found.
func (g *Graph) EdgeBetween(a, b NodeID) (EdgeID, bool) {
	best := EdgeID(-1)
	for _, eid := range g.adj[a] {
		e := &g.edges[eid]
		if e.Other(a) != b {
			continue
		}
		if best < 0 || e.Available > g.edges[best].Available {
			best = eid
		}
	}
	return best, best >= 0
}

// ResetAvailable restores Available = Capacity on every edge.
func (g *Graph) ResetAvailable() {
	for i := range g.edges {
		g.edges[i].Available = g.edges[i].Capacity
	}
}

// TotalFreeGPUMemory sums FreeBytes over all GPU nodes.
func (g *Graph) TotalFreeGPUMemory() int64 {
	var sum int64
	for _, id := range g.gpus {
		sum += g.nodes[id].FreeBytes
	}
	return sum
}

// Validate checks structural invariants: adjacency consistency and positive
// capacities. It returns the first violation found, or nil.
func (g *Graph) Validate() error {
	for i := range g.edges {
		e := &g.edges[i]
		if e.Capacity <= 0 {
			return fmt.Errorf("edge %d (%s) has non-positive capacity %g", e.ID, e.Kind, e.Capacity)
		}
		if e.Available < 0 || e.Available > e.Capacity {
			return fmt.Errorf("edge %d available %g outside [0, %g]", e.ID, e.Available, e.Capacity)
		}
		if e.Latency < 0 {
			return fmt.Errorf("edge %d has negative latency", e.ID)
		}
	}
	for n, edges := range g.adj {
		for _, eid := range edges {
			e := &g.edges[eid]
			if e.A != NodeID(n) && e.B != NodeID(n) {
				return fmt.Errorf("adjacency of node %d lists foreign edge %d", n, eid)
			}
		}
	}
	return nil
}
