package topology

import (
	"testing"
)

// line builds a simple chain topology a-b-c-... with the given bandwidths.
func line(t *testing.T, bws ...float64) (*Graph, []NodeID) {
	t.Helper()
	g := NewGraph()
	ids := make([]NodeID, len(bws)+1)
	for i := range ids {
		ids[i] = g.AddNode(Node{Kind: KindGPU, Server: i})
	}
	for i, bw := range bws {
		g.AddEdge(ids[i], ids[i+1], LinkEthernet, bw, 1e-6)
	}
	return g, ids
}

func TestAddNodeIndexes(t *testing.T) {
	g := NewGraph()
	gpu := g.AddNode(Node{Kind: KindGPU, Server: 3, GPUType: "A100", MemoryBytes: 40 * GiB, FreeBytes: 40 * GiB})
	sw := g.AddNode(Node{Kind: KindAccessSwitch, INASlots: 16})
	host := g.AddNode(Node{Kind: KindHost, Server: 99})

	if len(g.GPUs()) != 1 || g.GPUs()[0] != gpu {
		t.Errorf("GPUs() = %v", g.GPUs())
	}
	if len(g.Switches()) != 1 || g.Switches()[0] != sw {
		t.Errorf("Switches() = %v", g.Switches())
	}
	if g.Node(host).Server != -1 {
		t.Error("non-GPU Server not normalized to -1")
	}
	if got := g.ServerGPUs(3); len(got) != 1 || got[0] != gpu {
		t.Errorf("ServerGPUs(3) = %v", got)
	}
	if g.NumServers() != 1 {
		t.Errorf("NumServers = %d", g.NumServers())
	}
}

func TestEdgeOther(t *testing.T) {
	g, ids := line(t, 1e9)
	e := g.Edge(0)
	if e.Other(ids[0]) != ids[1] || e.Other(ids[1]) != ids[0] {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(NodeID(99))
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU})
	for _, fn := range []func(){
		func() { g.AddEdge(a, a, LinkNVLink, 1, 0) },
		func() { g.AddEdge(a, NodeID(5), LinkNVLink, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad AddEdge did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestEdgeBetweenPrefersMoreAvailable(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU, Server: 0})
	b := g.AddNode(Node{Kind: KindGPU, Server: 0})
	e1 := g.AddEdge(a, b, LinkEthernet, 10, 0)
	e2 := g.AddEdge(a, b, LinkEthernet, 20, 0)
	if got, ok := g.EdgeBetween(a, b); !ok || got != e2 {
		t.Errorf("EdgeBetween = %v, want %v", got, e2)
	}
	g.Edge(e2).Available = 5
	if got, _ := g.EdgeBetween(a, b); got != e1 {
		t.Errorf("EdgeBetween after drain = %v, want %v", got, e1)
	}
	if _, ok := g.EdgeBetween(a, a); ok {
		t.Error("EdgeBetween(a,a) should not find an edge")
	}
}

func TestResetAvailable(t *testing.T) {
	g, _ := line(t, 100, 200)
	g.Edge(0).Available = 1
	g.Edge(1).Available = 2
	g.ResetAvailable()
	if g.Edge(0).Available != 100 || g.Edge(1).Available != 200 {
		t.Error("ResetAvailable did not restore capacity")
	}
}

func TestSameServer(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(Node{Kind: KindGPU, Server: 1})
	b := g.AddNode(Node{Kind: KindGPU, Server: 1})
	c := g.AddNode(Node{Kind: KindGPU, Server: 2})
	sw := g.AddNode(Node{Kind: KindAccessSwitch})
	if !g.SameServer(a, b) {
		t.Error("a,b should share a server")
	}
	if g.SameServer(a, c) || g.SameServer(a, sw) {
		t.Error("false positives in SameServer")
	}
}

func TestValidate(t *testing.T) {
	g, _ := line(t, 100)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.Edge(0).Available = 1000 // > capacity
	if err := g.Validate(); err == nil {
		t.Error("available > capacity not caught")
	}
	g.Edge(0).Available = 100
	g.Edge(0).Capacity = 0
	if err := g.Validate(); err == nil {
		t.Error("zero capacity not caught")
	}
}

func TestTotalFreeGPUMemory(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{Kind: KindGPU, Server: 0, FreeBytes: 10})
	g.AddNode(Node{Kind: KindGPU, Server: 0, FreeBytes: 20})
	g.AddNode(Node{Kind: KindAccessSwitch})
	if got := g.TotalFreeGPUMemory(); got != 30 {
		t.Errorf("TotalFreeGPUMemory = %d, want 30", got)
	}
}

func TestNodeKindStrings(t *testing.T) {
	cases := map[NodeKind]string{
		KindGPU: "gpu", KindAccessSwitch: "access-switch",
		KindCoreSwitch: "core-switch", KindHost: "host",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !KindAccessSwitch.IsSwitch() || !KindCoreSwitch.IsSwitch() || KindGPU.IsSwitch() {
		t.Error("IsSwitch wrong")
	}
	links := map[LinkKind]string{
		LinkEthernet: "ethernet", LinkNVLink: "nvlink", LinkPCIe: "pcie", LinkTrunk: "trunk",
	}
	for k, want := range links {
		if k.String() != want {
			t.Errorf("LinkKind %d = %q, want %q", k, k.String(), want)
		}
	}
}
