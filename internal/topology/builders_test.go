package topology

import (
	"math"
	"testing"
)

func TestTestbedShape(t *testing.T) {
	g := Testbed()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(g.GPUs()); got != 16 {
		t.Errorf("GPUs = %d, want 16 (4 servers x 4)", got)
	}
	if got := len(g.Switches()); got != 2 {
		t.Errorf("switches = %d, want 2", got)
	}
	if got := g.NumServers(); got != 4 {
		t.Errorf("servers = %d, want 4", got)
	}
	// Memory mix: 8 A100 GPUs at 40 GiB, 8 V100 at 32 GiB.
	var a100, v100 int
	for _, id := range g.GPUs() {
		switch n := g.Node(id); n.GPUType {
		case "A100":
			a100++
			if n.MemoryBytes != 40*GiB {
				t.Errorf("A100 memory %d", n.MemoryBytes)
			}
		case "V100":
			v100++
			if n.MemoryBytes != 32*GiB {
				t.Errorf("V100 memory %d", n.MemoryBytes)
			}
		}
	}
	if a100 != 8 || v100 != 8 {
		t.Errorf("GPU mix = %d A100 / %d V100, want 8/8", a100, v100)
	}
}

func TestTestbedWiring(t *testing.T) {
	g := Testbed()
	// Every GPU has exactly one Ethernet uplink and three NVLink peers.
	for _, id := range g.GPUs() {
		var eth, nv int
		for _, eid := range g.Incident(id) {
			switch g.Edge(eid).Kind {
			case LinkEthernet:
				eth++
			case LinkNVLink:
				nv++
			}
		}
		if eth != 1 {
			t.Errorf("GPU %d has %d Ethernet uplinks, want 1", id, eth)
		}
		if nv != 3 {
			t.Errorf("GPU %d has %d NVLink edges, want 3", id, nv)
		}
	}
	// Cross-connection: each server's GPUs reach both switches.
	for s := 0; s < g.NumServers(); s++ {
		seen := map[NodeID]bool{}
		for _, gpu := range g.ServerGPUs(s) {
			for _, eid := range g.Incident(gpu) {
				e := g.Edge(eid)
				if e.Kind == LinkEthernet {
					seen[e.Other(gpu)] = true
				}
			}
		}
		if len(seen) != 2 {
			t.Errorf("server %d uplinks to %d switches, want 2", s, len(seen))
		}
	}
	// All GPUs mutually reachable.
	m := g.NewMatrix(g.GPUs(), TransferCost(1<<20), nil)
	for _, a := range g.GPUs() {
		for _, b := range g.GPUs() {
			if math.IsInf(m.Dist(a, b), 1) {
				t.Fatalf("GPU %d cannot reach GPU %d", a, b)
			}
		}
	}
}

func TestFig2HopDelays(t *testing.T) {
	// Reproduces the worked example of Fig. 2 directly from the link
	// constants: 1 MB over two Ethernet hops ~ 160 us; 1 NVLink hop plus one
	// Ethernet hop ~ 85-90 us, i.e. roughly 43% lower.
	const size = 1 << 20
	ethHop := float64(size)/Ethernet100G + EthernetHopLatency
	nvHop := float64(size)/NVLinkA100 + NVLinkHopLatency
	homo := 2 * ethHop
	hetero := nvHop + ethHop
	if homo < 150e-6 || homo > 180e-6 {
		t.Errorf("homogeneous 2-hop delay = %g s, want ~160 us", homo)
	}
	if hetero < 75e-6 || hetero > 95e-6 {
		t.Errorf("heterogeneous delay = %g s, want ~90 us", hetero)
	}
	reduction := 1 - hetero/homo
	if reduction < 0.38 || reduction < 0 {
		t.Errorf("reduction = %.1f%%, want ~43%%", reduction*100)
	}
}

func TestPodDefaults(t *testing.T) {
	g := Pod2Tracks(6)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(g.GPUs()); got != 48 {
		t.Errorf("GPUs = %d, want 48 (6 servers x 8)", got)
	}
	var access, core int
	for _, id := range g.Switches() {
		switch g.Node(id).Kind {
		case KindAccessSwitch:
			access++
		case KindCoreSwitch:
			core++
		}
	}
	if access != 2 {
		t.Errorf("access switches = %d, want 2 (one group, 2tracks)", access)
	}
	if core < 1 {
		t.Errorf("core switches = %d, want >= 1", core)
	}
}

func TestPod8TracksSpreadsUplinks(t *testing.T) {
	g2 := Pod2Tracks(16)
	g8 := Pod8Tracks(16)
	uplinksPerAccess := func(g *Graph) float64 {
		counts := map[NodeID]int{}
		for _, gpu := range g.GPUs() {
			for _, eid := range g.Incident(gpu) {
				e := g.Edge(eid)
				if e.Kind == LinkEthernet {
					counts[e.Other(gpu)]++
				}
			}
		}
		var total, n int
		for _, c := range counts {
			total += c
			n++
		}
		return float64(total) / float64(n)
	}
	if uplinksPerAccess(g8) >= uplinksPerAccess(g2) {
		t.Errorf("8tracks should have fewer GPUs per access switch: 2tracks=%g, 8tracks=%g",
			uplinksPerAccess(g2), uplinksPerAccess(g8))
	}
}

func TestPodMultipleGroups(t *testing.T) {
	g := Pod2Tracks(13) // 3 groups: 6 + 6 + 1
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.NumServers(); got != 13 {
		t.Errorf("servers = %d, want 13", got)
	}
	var access int
	for _, id := range g.Switches() {
		if g.Node(id).Kind == KindAccessSwitch {
			access++
		}
	}
	if access != 6 {
		t.Errorf("access switches = %d, want 6 (3 groups x 2 tracks)", access)
	}
	// Cross-group GPUs must still be reachable (via core switches).
	gpus := g.GPUs()
	first, last := gpus[0], gpus[len(gpus)-1]
	sp := g.Dijkstra(first, TransferCost(1<<20), nil)
	if math.IsInf(sp.Dist[last], 1) {
		t.Error("cross-group GPUs unreachable")
	}
}

func TestPodPanicsWithoutServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pod with zero servers did not panic")
		}
	}()
	Pod(PodConfig{})
}

func TestPCIeFallbackServer(t *testing.T) {
	g := Pod(PodConfig{
		Servers: 1,
		Server:  ServerSpec{GPUs: 4, GPUType: "L40", MemoryBytes: 48 * GiB},
	})
	var pcie int
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(EdgeID(i)).Kind == LinkPCIe {
			pcie++
		}
	}
	if pcie != 6 {
		t.Errorf("PCIe mesh edges = %d, want 6 (4 choose 2)", pcie)
	}
}
