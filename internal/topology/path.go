package topology

import (
	"container/heap"
	"math"
)

// Path is a route through the graph: the visited nodes and the edges between
// them (len(Edges) == len(Nodes)-1). A path from a node to itself has one
// node and no edges.
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
}

// Hops returns the number of edges traversed.
func (p *Path) Hops() int { return len(p.Edges) }

// Valid reports whether the path is non-empty.
func (p *Path) Valid() bool { return len(p.Nodes) > 0 }

// TransferTime returns the time in seconds to push size bytes along the path
// under store-and-forward at each hop's *available* bandwidth: the paper's
// per-hop model T = sum_n (D / B(e_n)) + fixed latencies (Eq. 10, Eq. 15).
func (p *Path) TransferTime(g *Graph, size int64) float64 {
	var t float64
	for _, eid := range p.Edges {
		e := g.Edge(eid)
		bw := e.Available
		if bw <= 0 {
			return math.Inf(1)
		}
		t += float64(size)/bw + e.Latency
	}
	return t
}

// Bottleneck returns the minimum available bandwidth along the path, in
// bytes/second (Eq. 11's min_{e_n in P} B(e_n)). It returns +Inf for an
// empty (self) path.
func (p *Path) Bottleneck(g *Graph) float64 {
	min := math.Inf(1)
	for _, eid := range p.Edges {
		if bw := g.Edge(eid).Available; bw < min {
			min = bw
		}
	}
	return min
}

// EdgeCost computes the routing metric of a single edge for a message of the
// given size: serialization at available bandwidth plus fixed latency. Size
// zero degenerates to pure latency (hop-count-like routing).
type EdgeCost func(e *Edge) float64

// TransferCost returns an EdgeCost for shortest-path routing of size bytes.
// Edges with no available bandwidth are infinitely expensive.
func TransferCost(size int64) EdgeCost {
	return func(e *Edge) float64 {
		if e.Available <= 0 {
			return math.Inf(1)
		}
		return float64(size)/e.Available + e.Latency
	}
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPaths holds the single-source Dijkstra result: per-node distance
// and the predecessor edge on the shortest-path tree.
type ShortestPaths struct {
	Source NodeID
	Dist   []float64
	prevE  []EdgeID // predecessor edge, -1 at source/unreachable
	g      *Graph
}

// Dijkstra computes shortest paths from src under the given cost metric.
// Relay restrictions are expressed by the allow predicate: a node may be used
// as an *intermediate* hop only if allow(node) is true (endpoints are always
// allowed). A nil allow permits every node. The paper's routes relay through
// GPUs (NVLink forwarding, Fig. 2b) and switches, so the default permits all.
func (g *Graph) Dijkstra(src NodeID, cost EdgeCost, allow func(NodeID) bool) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source: src,
		Dist:   make([]float64, n),
		prevE:  make([]EdgeID, n),
		g:      g,
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.prevE[i] = -1
	}
	sp.Dist[src] = 0

	items := make([]*pqItem, n)
	q := make(pq, 0, n)
	items[src] = &pqItem{node: src, dist: 0}
	heap.Push(&q, items[src])

	for q.Len() > 0 {
		it := heap.Pop(&q).(*pqItem)
		u := it.node
		if it.dist > sp.Dist[u] {
			continue
		}
		// Relay restriction: only expand through allowed intermediates.
		if u != src && allow != nil && !allow(u) {
			continue
		}
		for _, eid := range g.Incident(u) {
			e := g.Edge(eid)
			w := cost(e)
			if math.IsInf(w, 1) {
				continue
			}
			v := e.Other(u)
			if d := sp.Dist[u] + w; d < sp.Dist[v] {
				sp.Dist[v] = d
				sp.prevE[v] = eid
				if items[v] == nil {
					items[v] = &pqItem{node: v, dist: d}
					heap.Push(&q, items[v])
				} else {
					items[v].dist = d
					if items[v].idx >= 0 && items[v].idx < q.Len() && q[items[v].idx] == items[v] {
						heap.Fix(&q, items[v].idx)
					} else {
						// Item already popped with a stale larger distance:
						// push a fresh entry.
						items[v] = &pqItem{node: v, dist: d}
						heap.Push(&q, items[v])
					}
				}
			}
		}
	}
	return sp
}

// PathTo reconstructs the shortest path from the source to dst. The second
// result is false when dst is unreachable.
func (sp *ShortestPaths) PathTo(dst NodeID) (Path, bool) {
	if math.IsInf(sp.Dist[dst], 1) {
		return Path{}, false
	}
	var revEdges []EdgeID
	var revNodes []NodeID
	for at := dst; at != sp.Source; {
		eid := sp.prevE[at]
		revEdges = append(revEdges, eid)
		revNodes = append(revNodes, at)
		at = sp.g.Edge(eid).Other(at)
	}
	p := Path{
		Nodes: make([]NodeID, 0, len(revNodes)+1),
		Edges: make([]EdgeID, 0, len(revEdges)),
	}
	p.Nodes = append(p.Nodes, sp.Source)
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
		p.Edges = append(p.Edges, revEdges[i])
	}
	return p, true
}

// Matrix is the planner's offline all-pairs structure: the minimum-latency
// matrix D(i,j) and the shortest-path matrix P(k,a) (paper Alg. 2 lines 2-3),
// restricted to a working set of nodes.
type Matrix struct {
	g     *Graph
	index map[NodeID]int
	nodes []NodeID
	dist  [][]float64
	paths [][]Path
}

// NewMatrix runs Dijkstra from every node in nodes and stores distances and
// paths to every other node in nodes. The cost metric and relay predicate
// match Dijkstra's.
func (g *Graph) NewMatrix(nodes []NodeID, cost EdgeCost, allow func(NodeID) bool) *Matrix {
	m := &Matrix{
		g:     g,
		index: make(map[NodeID]int, len(nodes)),
		nodes: append([]NodeID(nil), nodes...),
		dist:  make([][]float64, len(nodes)),
		paths: make([][]Path, len(nodes)),
	}
	for i, n := range m.nodes {
		m.index[n] = i
	}
	for i, src := range m.nodes {
		sp := g.Dijkstra(src, cost, allow)
		m.dist[i] = make([]float64, len(m.nodes))
		m.paths[i] = make([]Path, len(m.nodes))
		for j, dst := range m.nodes {
			m.dist[i][j] = sp.Dist[dst]
			if p, ok := sp.PathTo(dst); ok {
				m.paths[i][j] = p
			}
		}
	}
	return m
}

// Nodes returns the node working set (matrix-owned slice).
func (m *Matrix) Nodes() []NodeID { return m.nodes }

// Contains reports whether n is in the working set.
func (m *Matrix) Contains(n NodeID) bool { _, ok := m.index[n]; return ok }

// Dist returns D(a,b): +Inf when unreachable or when either node is outside
// the working set.
func (m *Matrix) Dist(a, b NodeID) float64 {
	i, ok1 := m.index[a]
	j, ok2 := m.index[b]
	if !ok1 || !ok2 {
		return math.Inf(1)
	}
	return m.dist[i][j]
}

// PathBetween returns P(a,b); the second result is false when unreachable or
// out of the working set.
func (m *Matrix) PathBetween(a, b NodeID) (Path, bool) {
	i, ok1 := m.index[a]
	j, ok2 := m.index[b]
	if !ok1 || !ok2 {
		return Path{}, false
	}
	p := m.paths[i][j]
	return p, p.Valid()
}
