package topology

import "fmt"

// Bandwidths and fixed latencies of the paper's hardware, in bytes/second and
// seconds. The paper quotes NVLink at 600 GB/s (A100, §I) and inter-server
// links at 100 Gb/s Ethernet; Fig. 2's worked example (1 MB, 2 Ethernet hops
// ~= 160 us; NVLink + 1 Ethernet hop ~= 90 us) pins the per-hop constants.
const (
	Ethernet100G = 12.5e9 // 100 Gb/s in bytes/s
	NVLinkA100   = 600e9  // A100 NVLink aggregate, bytes/s
	NVLinkV100   = 300e9  // V100 NVLink aggregate, bytes/s
	PCIe4x16     = 32e9   // PCIe 4.0 x16, bytes/s (future-work fallback)
	TrunkDefault = 4 * Ethernet100G

	EthernetHopLatency = 2e-6   // NIC + switch traversal
	NVLinkHopLatency   = 1e-6   // intra-server hop
	TrunkHopLatency    = 1.5e-6 // switch-to-switch

	// DefaultINASlots is the aggregator-slot pool size of a programmable
	// switch (SwitchML-style pool, §IV "Agent on Programmable Switches").
	DefaultINASlots = 512

	GiB = int64(1) << 30
)

// CrossNUMAFactor derates PCIe bandwidth for GPU pairs in different NUMA
// domains: their traffic crosses the inter-socket interconnect (the paper's
// future-work concern, §VII: "avoiding performance degradation due to
// cross-NUMA effects").
const CrossNUMAFactor = 0.5

// ServerSpec describes one homogeneous GPU server.
type ServerSpec struct {
	GPUs        int
	GPUType     string
	MemoryBytes int64   // per-GPU HBM
	NVLinkBW    float64 // per-link intra-server bandwidth (0 = use PCIe)
	// NUMADomains splits a PCIe server's GPUs round-robin across CPU
	// sockets; cross-domain PCIe links run at CrossNUMAFactor of the
	// intra-domain bandwidth. Ignored (single domain) when <= 1 or when the
	// server has NVLink (NVSwitch fabrics are NUMA-oblivious).
	NUMADomains int
}

// A100Server returns the testbed's A100 server spec (4 GPUs x 40 GB, Fig. 6).
func A100Server() ServerSpec {
	return ServerSpec{GPUs: 4, GPUType: "A100", MemoryBytes: 40 * GiB, NVLinkBW: NVLinkA100}
}

// V100Server returns the testbed's V100 server spec (4 GPUs x 32 GB, Fig. 6).
func V100Server() ServerSpec {
	return ServerSpec{GPUs: 4, GPUType: "V100", MemoryBytes: 32 * GiB, NVLinkBW: NVLinkV100}
}

// A100x8Server returns the simulation's server spec (8 GPUs x 40 GB, §V).
func A100x8Server() ServerSpec {
	return ServerSpec{GPUs: 8, GPUType: "A100", MemoryBytes: 40 * GiB, NVLinkBW: NVLinkA100}
}

// L40Server returns a PCIe-only L40 server (no NVLink) with two NUMA
// domains — the §VII future-work configuration.
func L40Server() ServerSpec {
	return ServerSpec{GPUs: 4, GPUType: "L40", MemoryBytes: 48 * GiB, NUMADomains: 2}
}

// addServer adds the GPUs of one server as a full NVLink (or PCIe) mesh and
// returns their node ids. PCIe servers with NUMADomains > 1 derate
// cross-domain links by CrossNUMAFactor.
func addServer(g *Graph, server int, spec ServerSpec) []NodeID {
	domains := spec.NUMADomains
	if domains <= 1 || spec.NVLinkBW > 0 {
		domains = 1
	}
	ids := make([]NodeID, spec.GPUs)
	for i := 0; i < spec.GPUs; i++ {
		ids[i] = g.AddNode(Node{
			Kind:        KindGPU,
			Name:        fmt.Sprintf("srv%d-gpu%d", server, i),
			Server:      server,
			NUMA:        i % domains,
			GPUType:     spec.GPUType,
			MemoryBytes: spec.MemoryBytes,
			FreeBytes:   spec.MemoryBytes,
		})
	}
	kind, bw, lat := LinkNVLink, spec.NVLinkBW, NVLinkHopLatency
	if spec.NVLinkBW <= 0 {
		kind, bw, lat = LinkPCIe, PCIe4x16, NVLinkHopLatency
	}
	for i := 0; i < spec.GPUs; i++ {
		for j := i + 1; j < spec.GPUs; j++ {
			linkBW := bw
			if kind == LinkPCIe && g.Node(ids[i]).NUMA != g.Node(ids[j]).NUMA {
				linkBW = bw * CrossNUMAFactor
			}
			g.AddEdge(ids[i], ids[j], kind, linkBW, lat)
		}
	}
	return ids
}

// Testbed builds the paper's Fig. 6 testbed: two A100 servers and two V100
// servers (4 GPUs each, NVLink full mesh), two programmable access switches
// in the 2tracks cross-connected scheme (each server's four 100 Gb/s NIC
// ports split two-and-two across the switches), a trunk between the
// switches, and two host nodes (parameter server and traffic replayer).
func Testbed() *Graph {
	g := NewGraph()
	specs := []ServerSpec{A100Server(), A100Server(), V100Server(), V100Server()}

	sw := make([]NodeID, 2)
	for i := range sw {
		sw[i] = g.AddNode(Node{
			Kind:     KindAccessSwitch,
			Name:     fmt.Sprintf("tofino%d", i),
			INASlots: DefaultINASlots,
		})
	}
	g.AddEdge(sw[0], sw[1], LinkTrunk, TrunkDefault, TrunkHopLatency)

	for s, spec := range specs {
		gpus := addServer(g, s, spec)
		// Cross-connect: GPUs 0,1 uplink to switch 0; GPUs 2,3 to switch 1
		// (high-availability 2tracks wiring, Fig. 6).
		for i, gpu := range gpus {
			g.AddEdge(gpu, sw[i/2%2], LinkEthernet, Ethernet100G, EthernetHopLatency)
		}
	}

	ps := g.AddNode(Node{Kind: KindHost, Name: "param-server"})
	replayer := g.AddNode(Node{Kind: KindHost, Name: "replayer"})
	g.AddEdge(ps, sw[0], LinkEthernet, Ethernet100G, EthernetHopLatency)
	g.AddEdge(replayer, sw[1], LinkEthernet, Ethernet100G, EthernetHopLatency)
	return g
}

// PodConfig parameterizes the large-scale simulation topologies of §V. A pod
// is a set of server groups; each group of ServersPerGroup servers shares
// Tracks access switches, and all access switches connect to CoreSwitches
// core switches. The paper's 2tracks configuration groups 6 servers per 2
// access switches; 8tracks groups 16 servers per 8 access switches.
type PodConfig struct {
	Servers         int
	Server          ServerSpec
	Tracks          int
	ServersPerGroup int
	CoreSwitches    int
	EthernetBW      float64
	TrunkBW         float64
	// Oversubscription is the access-to-core Clos oversubscription ratio
	// used when TrunkBW is derived (default 3:1, a typical datacenter
	// fabric). Higher ratios congest cross-access traffic more — this is
	// what separates the 2tracks and 8tracks settings: 2tracks funnels 24
	// GPUs through each access switch's uplinks, 8tracks only 16.
	Oversubscription float64
	INASlots         int
}

func (c *PodConfig) setDefaults() {
	if c.Server.GPUs == 0 {
		c.Server = A100x8Server()
	}
	if c.EthernetBW == 0 {
		c.EthernetBW = Ethernet100G
	}
	if c.INASlots == 0 {
		c.INASlots = DefaultINASlots
	}
	if c.Tracks == 0 {
		c.Tracks = 2
	}
	if c.ServersPerGroup == 0 {
		c.ServersPerGroup = 6
	}
	if c.CoreSwitches == 0 {
		groups := (c.Servers + c.ServersPerGroup - 1) / c.ServersPerGroup
		// Paper ratio: 2tracks has 27 cores per 400 access switches; 8tracks
		// 280 per 600. Approximate with tracks-scaled core counts, >= 1.
		c.CoreSwitches = max(1, groups*c.Tracks/8)
	}
	if c.Oversubscription == 0 {
		c.Oversubscription = 3
	}
	if c.TrunkBW == 0 {
		// Clos uplinks: each access switch's aggregate uplink is its GPU
		// downlink divided by the oversubscription ratio, split across the
		// core switches.
		downlink := c.EthernetBW * float64(c.ServersPerGroup*c.Server.GPUs) / float64(c.Tracks)
		c.TrunkBW = downlink / (float64(c.CoreSwitches) * c.Oversubscription)
	}
}

// Pod builds a simulation pod per cfg. GPU NICs within a group are spread
// round-robin across the group's access switches; every access switch
// uplinks to every core switch.
func Pod(cfg PodConfig) *Graph {
	cfg.setDefaults()
	if cfg.Servers <= 0 {
		panic("topology: PodConfig.Servers must be positive")
	}
	g := NewGraph()

	cores := make([]NodeID, cfg.CoreSwitches)
	for i := range cores {
		cores[i] = g.AddNode(Node{
			Kind:     KindCoreSwitch,
			Name:     fmt.Sprintf("core%d", i),
			INASlots: cfg.INASlots,
		})
	}

	groups := (cfg.Servers + cfg.ServersPerGroup - 1) / cfg.ServersPerGroup
	server := 0
	for grp := 0; grp < groups; grp++ {
		access := make([]NodeID, cfg.Tracks)
		for t := range access {
			access[t] = g.AddNode(Node{
				Kind:     KindAccessSwitch,
				Name:     fmt.Sprintf("grp%d-access%d", grp, t),
				INASlots: cfg.INASlots,
			})
			for _, core := range cores {
				g.AddEdge(access[t], core, LinkTrunk, cfg.TrunkBW, TrunkHopLatency)
			}
		}
		for s := 0; s < cfg.ServersPerGroup && server < cfg.Servers; s++ {
			gpus := addServer(g, server, cfg.Server)
			for i, gpu := range gpus {
				g.AddEdge(gpu, access[i%cfg.Tracks], LinkEthernet, cfg.EthernetBW, EthernetHopLatency)
			}
			server++
		}
	}
	return g
}

// Pod2Tracks builds a 2tracks pod (6 servers per 2 access switches) with the
// given server count, using the simulation's 8-GPU A100 servers.
func Pod2Tracks(servers int) *Graph {
	return Pod(PodConfig{Servers: servers, Tracks: 2, ServersPerGroup: 6})
}

// Pod8Tracks builds an 8tracks pod (16 servers per 8 access switches): the
// same GPUs spread across four times as many uplinks, modelling the paper's
// "more evenly distributed traffic across a larger number of switches".
func Pod8Tracks(servers int) *Graph {
	return Pod(PodConfig{Servers: servers, Tracks: 8, ServersPerGroup: 16})
}
