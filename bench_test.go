package heroserve

// One benchmark per paper artifact: each regenerates the corresponding
// table/figure via internal/experiments and reports the headline metrics as
// benchmark outputs (b.ReportMetric), printing the full table once. Run:
//
//	go test -bench=. -benchmem
//
// The serving sweeps (Fig. 7, Fig. 8) take minutes per iteration by design —
// they replay full rate sweeps across four systems. Ablation benchmarks at
// the bottom isolate the design choices DESIGN.md calls out.

import (
	"os"
	"sync"
	"testing"

	"heroserve/internal/collective"
	"heroserve/internal/core"
	"heroserve/internal/experiments"
	"heroserve/internal/model"
	"heroserve/internal/netsim"
	"heroserve/internal/planner"
	"heroserve/internal/scheduler"
	"heroserve/internal/serving"
	"heroserve/internal/sim"
	"heroserve/internal/switchsim"
	"heroserve/internal/telemetry/perf"
	"heroserve/internal/topology"
	"heroserve/internal/workload"
)

// printOnce renders a report to stderr the first time a benchmark runs.
var printed sync.Map

func printReport(b *testing.B, rep *experiments.Report) {
	b.Helper()
	if _, dup := printed.LoadOrStore(rep.Name, true); !dup {
		rep.Fprint(os.Stderr)
	}
}

func BenchmarkFig1PrefillBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		points := experiments.Fig1Data()
		share = points[1].CommShare // A100
	}
	b.ReportMetric(share*100, "A100-comm-%")
	printReport(b, experiments.Fig1())
}

func BenchmarkFig2INAComparison(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		d := experiments.Fig2Data(1 << 20)
		reduction = d.ReductionSim
	}
	b.ReportMetric(reduction*100, "hetero-reduction-%")
	printReport(b, experiments.Fig2())
}

func BenchmarkFig7TestbedChatbot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig7Data(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		var hero, dist float64
		for _, s := range data[0].Systems {
			switch s.System {
			case experiments.HeroServe:
				hero = s.MaxPerGPURate
			case experiments.DistServeK:
				dist = s.MaxPerGPURate
			}
		}
		b.ReportMetric(hero/dist, "speedup-vs-DistServe")
		printReport(b, experiments.Fig7Render(data))
	}
}

func BenchmarkFig8Sim2And8Tracks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig8Data(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		var hero, dist float64
		for _, s := range data[0].Systems {
			switch s.System {
			case experiments.HeroServe:
				hero = s.MaxPerGPURate
			case experiments.DistServeK:
				dist = s.MaxPerGPURate
			}
		}
		b.ReportMetric(hero/dist, "2tracks-speedup")
		printReport(b, experiments.Fig8Render(data))
	}
}

func BenchmarkFig9INAThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9Data(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		var hero, dist float64
		n := 0
		for _, p := range points {
			switch p.System {
			case experiments.HeroServe:
				hero += p.Throughput
				n++
			case experiments.DistServeK:
				dist += p.Throughput
			}
		}
		b.ReportMetric(hero/float64(n)/1e9, "HeroServe-GB/s")
		b.ReportMetric(hero/dist, "vs-DistServe")
		printReport(b, experiments.Fig9Render(points))
	}
}

func BenchmarkFig10MemoryEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tracks, err := experiments.Fig10Data(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		var hero, dist float64
		for _, s := range tracks[0].Systems {
			switch s.System {
			case experiments.HeroServe:
				hero = s.MeanUtil
			case experiments.DistServeK:
				dist = s.MeanUtil
			}
		}
		b.ReportMetric(hero*100, "HeroServe-KV-%")
		b.ReportMetric(dist*100, "DistServe-KV-%")
		printReport(b, experiments.Fig10Render(tracks))
	}
}

func BenchmarkAlg1PlannerSolve(b *testing.B) {
	g := topology.Testbed()
	pre, dec := planner.SplitPoolsByServer(g, 2)
	trace := workload.NewGenerator(workload.Chatbot, 1).Generate(512, 1)
	in := planner.Inputs{
		Model:         model.OPT66B(),
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace.BatchStats(32),
		Lambda:        3,
		SLA:           serving.SLA{TTFT: 2.5, TPOT: 0.15},
		MinTensDecode: 8,
		Hetero:        true,
		Seed:          1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
	if rep, err := experiments.Alg1(experiments.Quick, 1); err == nil {
		printReport(b, rep)
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// chatbotRun serves one OPT-66B chatbot trace on the testbed with the given
// policy and returns the mean positive TPOT.
func chatbotRun(b *testing.B, policy serving.CommPolicy) float64 {
	b.Helper()
	g := topology.Testbed()
	pre, dec := planner.SplitPoolsByServer(g, 2)
	trace512 := workload.NewGenerator(workload.Chatbot, 1).Generate(512, 1)
	in := planner.Inputs{
		Model:         model.OPT66B(),
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace512.BatchStats(32),
		Lambda:        4,
		SLA:           serving.SLA{TTFT: 2.5, TPOT: 0.15},
		MinTensDecode: 8,
		Hetero:        true,
		Seed:          1,
	}
	plan, err := core.Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := serving.New(g, plan.Deployment, serving.Options{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	sys.InjectElephants(4, 512<<20, 60, 99)
	res := sys.Run(workload.NewGenerator(workload.Chatbot, 5).Generate(48, 4))
	var sum float64
	n := 0
	for _, m := range res.Requests {
		if m.TPOT > 0 {
			sum += m.TPOT
			n++
		}
	}
	return sum / float64(n)
}

// forcedScheme always runs one scheme (ablating the INA-vs-ring selector).
type forcedScheme struct {
	name   string
	scheme collective.Scheme
}

func (f forcedScheme) Name() string { return f.name }

func (f forcedScheme) AllReduce(ctx *serving.GroupCtx, msgBytes int64, steps int, done func()) {
	scheme := f.scheme
	if scheme.UsesINA() && ctx.Switch < 0 {
		scheme = collective.SchemeRing
	}
	ctx.Comm.AllReduce(scheme, ctx.Group, ctx.Switch, msgBytes, steps, done)
}

// BenchmarkAblationSchemeSelector compares the online scheduler against
// always-ring and always-hetero policies: the selector should match or beat
// both forced choices.
func BenchmarkAblationSchemeSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		online := chatbotRun(b, core.NewOnlinePolicy(scheduler.DefaultConfig()))
		ring := chatbotRun(b, forcedScheme{name: "always-ring", scheme: collective.SchemeRing})
		hetero := chatbotRun(b, forcedScheme{name: "always-hetero", scheme: collective.SchemeHetero})
		b.ReportMetric(online*1e3, "online-TPOT-ms")
		b.ReportMetric(ring*1e3, "always-ring-TPOT-ms")
		b.ReportMetric(hetero*1e3, "always-hetero-TPOT-ms")
	}
}

// BenchmarkAblationLoadPenalty zeroes the load-penalty coupling (gamma -> 0+
// with no cross-policy update) by using a near-zero gamma, isolating Eq. 18.
func BenchmarkAblationLoadPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := chatbotRun(b, core.NewOnlinePolicy(scheduler.DefaultConfig()))
		without := chatbotRun(b, core.NewOnlinePolicy(scheduler.Config{Gamma: 1e-9, Window: 0.1}))
		b.ReportMetric(with*1e3, "with-penalty-TPOT-ms")
		b.ReportMetric(without*1e3, "no-penalty-TPOT-ms")
	}
}

// BenchmarkAblationHeteroScheme disables the heterogeneous candidates in the
// online policy (Ethernet-only tables), isolating the NVLink pre-reduction.
func BenchmarkAblationHeteroScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hetero := chatbotRun(b, core.NewOnlinePolicy(scheduler.DefaultConfig()))
		ethOnly := core.NewOnlinePolicy(scheduler.DefaultConfig())
		ethOnly.Hetero = false
		eth := chatbotRun(b, ethOnly)
		b.ReportMetric(hetero*1e3, "hetero-TPOT-ms")
		b.ReportMetric(eth*1e3, "ethernet-only-TPOT-ms")
	}
}

// BenchmarkAblationPerturbation measures Alg. 2's swap refinement: planner H
// with and without perturbation iterations.
func BenchmarkAblationPerturbation(b *testing.B) {
	g := topology.Testbed()
	pre, dec := planner.SplitPoolsByServer(g, 2)
	trace := workload.NewGenerator(workload.Chatbot, 1).Generate(512, 1)
	mk := func(iters int) planner.Inputs {
		return planner.Inputs{
			Model:           model.OPT66B(),
			Graph:           g,
			PrefillGPUs:     pre,
			DecodeGPUs:      dec,
			Workload:        trace.BatchStats(32),
			Lambda:          3,
			SLA:             serving.SLA{TTFT: 2.5, TPOT: 0.15},
			MinTensDecode:   8,
			Hetero:          true,
			MaxPerturbIters: iters,
			Seed:            1,
		}
	}
	for i := 0; i < b.N; i++ {
		with, err := planner.Solve(mk(5))
		if err != nil {
			b.Fatal(err)
		}
		in := mk(-1)
		in.MaxPerturbIters = 1 // setDefaults would turn 0 into 5; 1 swap round minimum
		without, err := planner.Solve(in)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.H, "H-with-perturb")
		b.ReportMetric(without.H, "H-minimal-perturb")
	}
}

// BenchmarkEndToEndServe measures raw simulator throughput: simulated
// seconds per wall second for a loaded OPT-66B testbed run.
func BenchmarkEndToEndServe(b *testing.B) {
	e2eServeBench(b, serving.Options{})
}

// BenchmarkEndToEndServeRef is the same run forced onto the reference
// simulator paths (global water-filling, binary-heap event queue). Results
// are bit-identical to BenchmarkEndToEndServe; the pair is recorded in
// BENCH_6.json as the end-to-end fast-vs-reference comparison.
func BenchmarkEndToEndServeRef(b *testing.B) {
	e2eServeBench(b, serving.Options{ReferenceNetsim: true, ReferenceSim: true})
}

func e2eServeBench(b *testing.B, opts serving.Options) {
	g := topology.Testbed()
	pre, dec := planner.SplitPoolsByServer(g, 2)
	trace512 := workload.NewGenerator(workload.Chatbot, 1).Generate(512, 1)
	in := planner.Inputs{
		Model:         model.OPT66B(),
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace512.BatchStats(32),
		Lambda:        4,
		SLA:           serving.SLA{TTFT: 2.5, TPOT: 0.15},
		MinTensDecode: 8,
		Hetero:        true,
		Seed:          1,
	}
	plan, err := core.Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.NewGenerator(workload.Chatbot, 5).Generate(64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := serving.New(g, plan.Deployment, opts)
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(trace)
		b.ReportMetric(res.Duration, "sim-seconds")
	}
}

// BenchmarkStressServe is the scaled stress scenario pinned in BENCH_10.json:
// a 100k-request chatbot burst through an OPT-13B testbed deployment. It is
// the repo's raw-speed yardstick for the ROADMAP's "millions of requests per
// run" arc — events/s and allocs/op here are what later speed PRs must move.
func BenchmarkStressServe(b *testing.B) {
	stressServeBench(b, false)
}

// BenchmarkStressServePerf is the same run with the performance observatory
// armed. The ns/op ratio against BenchmarkStressServe is the sampler's
// measured overhead; scripts/bench.sh derives it as
// perf_sampler_overhead_frac and warns when it exceeds the 2% budget.
func BenchmarkStressServePerf(b *testing.B) {
	stressServeBench(b, true)
}

const stressRequests = 100_000

func stressServeBench(b *testing.B, armPerf bool) {
	g := topology.Testbed()
	pre, dec := planner.SplitPoolsByServer(g, 2)
	trace512 := workload.NewGenerator(workload.Chatbot, 1).Generate(512, 1)
	in := planner.Inputs{
		Model:       model.OPT13B(),
		Graph:       g,
		PrefillGPUs: pre,
		DecodeGPUs:  dec,
		Workload:    trace512.BatchStats(32),
		Lambda:      30,
		SLA:         serving.SLA{TTFT: 2.5, TPOT: 0.15},
		Seed:        1,
	}
	plan, err := core.Plan(in)
	if err != nil {
		b.Fatal(err)
	}
	// A bursty arrival stream well above the deployment's service rate: the
	// backlog this builds is what stresses queue depth and cancel churn.
	trace := workload.NewGenerator(workload.Chatbot, 9).Generate(stressRequests, 200)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	var simSeconds float64
	for i := 0; i < b.N; i++ {
		opts := serving.Options{}
		if armPerf {
			opts.Perf = perf.NewSampler(0)
		}
		sys, err := serving.New(g, plan.Deployment, opts)
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(trace)
		events += sys.Engine().Processed()
		simSeconds = res.Duration
		if res.Served != stressRequests {
			b.Fatalf("served %d of %d", res.Served, stressRequests)
		}
	}
	b.ReportMetric(simSeconds, "sim-seconds")
	if wall := b.Elapsed().Seconds(); wall > 0 {
		b.ReportMetric(float64(events)/wall, "events/s")
	}
}

// BenchmarkHeteroAllReduce64MB measures the heterogeneous collective on the
// testbed (the Fig. 9 primitive).
func BenchmarkHeteroAllReduce64MB(b *testing.B) {
	g := topology.Testbed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net := netsim.New(g, eng)
		c := collective.NewComm(net, collective.NewStaticRouter(g))
		c.HeteroAllReduce(g.GPUs(), g.Switches()[0], 64<<20, 1, func() {})
		eng.Run()
	}
}

// BenchmarkSwitchDataPlane measures the simulated Tofino ingest path. The
// packet stream is a precomputed fixed cycle (one full slot window of
// complete aggregation rounds), so the per-op work mix is identical no
// matter what b.N -benchtime settles on — deriving the stream from the loop
// variable instead would shift the slot/completion cadence with b.N and make
// runs at different -benchtime values measure different workloads.
func BenchmarkSwitchDataPlane(b *testing.B) {
	const (
		workers = 8
		window  = 128
	)
	sw := switchsim.New("bench", 512, switchsim.DefaultEntryBytes)
	if _, err := sw.RegisterJob(1, switchsim.ModeSync, workers, window); err != nil {
		b.Fatal(err)
	}
	vals := make([]int32, sw.EntryElems())
	for i := range vals {
		vals[i] = int32(i)
	}
	pkts := make([]switchsim.Packet, workers*window)
	for j := range pkts {
		pkts[j] = switchsim.Packet{Job: 1, Seq: int64(j / workers), Worker: j % workers, Values: vals}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var seqBase int64
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		p.Seq += seqBase
		sw.Ingest(p)
		if (i+1)%len(pkts) == 0 {
			seqBase += window
		}
	}
}
