module heroserve

go 1.22
