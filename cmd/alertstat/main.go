// Command alertstat analyzes an exported SLO alert log (the JSON from
// cmd/serve's -alerts-out or the daemon's /alerts endpoint): every alert's
// pending -> firing -> resolved lifecycle with its trigger-time cause
// snapshot. The default view is the sim-time timeline of transitions — the
// when-did-it-degrade twin of tracestat's where-did-the-time-go breakdown
// and decisionstat's what-would-the-road-not-taken-have-cost ledger.
//
// Usage:
//
//	serve -trace trace.json -alerts-out run.alerts.json ...
//	alertstat run.alerts.json
//	alertstat -summary run.alerts.json
//	alertstat -json run.alerts.json
//	alertstat -tsv run.alerts.json
//	alertstat -diff before.json after.json
//
// With -diff, two logs' summaries are compared side by side — which rule
// started firing, which stopped. Output is deterministic for deterministic
// runs, so the golden gate pins the -tsv rendering per case.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"heroserve/internal/telemetry/slo"
)

func main() {
	diff := flag.Bool("diff", false, "compare two alert logs' summaries (takes two files)")
	summary := flag.Bool("summary", false, "print the per-rule roll-up instead of the timeline")
	asJSON := flag.Bool("json", false, "emit the summary as JSON instead of text")
	tsv := flag.Bool("tsv", false, "emit the deterministic alert TSV (the golden-gate pin)")
	rule := flag.String("rule", "", "keep only this rule's alerts")
	state := flag.String("state", "", "keep only alerts in this state: pending | firing | resolved")
	flag.Parse()

	args := flag.Args()
	switch {
	case *diff && len(args) == 2:
		a := load(args[0])
		b := load(args[1])
		if err := slo.FprintDiff(os.Stdout, a, b); err != nil {
			fatalf("%v", err)
		}
	case !*diff && len(args) == 1:
		log := load(args[0])
		if *rule != "" || *state != "" {
			log = log.Filter(*state, *rule, 0, 0)
		}
		var err error
		switch {
		case *tsv:
			err = log.WriteTSV(os.Stdout)
		case *asJSON:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			err = enc.Encode(log.Summarize())
		case *summary:
			err = log.FprintSummary(os.Stdout)
		default:
			err = log.FprintTimeline(os.Stdout)
		}
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("usage: alertstat [-summary|-json|-tsv] [-rule r] [-state s] run.alerts.json | alertstat -diff a.json b.json")
	}
}

// load parses one alert log file ("-" for stdin).
func load(path string) *slo.Log {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	log, err := slo.ReadLog(r)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if len(log.Meta.Rules) == 0 {
		fmt.Fprintf(os.Stderr, "alertstat: warning: %s holds no armed rules (was the run monitored?)\n", path)
	}
	return log
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "alertstat: "+format+"\n", args...)
	os.Exit(1)
}
