// Command tracestat analyzes an exported trace (spans.json from cmd/serve's
// -trace-out or the daemon's /trace endpoint) through the critical-path
// analyzer: it reconstructs every request's span tree and prints the
// per-stage TTFT/E2E decomposition plus the slowest-N requests table, the
// offline twin of the live ttft/e2e_critical_path_seconds_total counters.
//
// Usage:
//
//	serve -trace trace.json -trace-out spans.json ...
//	tracestat spans.json
//	tracestat -top 20 spans.json
//	tracestat -diff before.json after.json
//	tracestat -json spans.json
//
// With -diff, two traces are analyzed and the per-stage E2E totals compared
// side by side — the quickest way to see which stage a policy or topology
// change actually moved. Output is deterministic for deterministic traces,
// so it can be pinned in golden tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"heroserve/internal/telemetry/critpath"
)

func main() {
	top := flag.Int("top", 10, "slowest-requests table size")
	diff := flag.Bool("diff", false, "compare two traces' per-stage totals (takes two files)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	args := flag.Args()
	switch {
	case *diff && len(args) == 2:
		a := analyze(args[0], *top)
		b := analyze(args[1], *top)
		if err := critpath.FprintDiff(os.Stdout, a, b); err != nil {
			fatalf("%v", err)
		}
	case !*diff && len(args) == 1:
		rep := analyze(args[0], *top)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fatalf("%v", err)
			}
			return
		}
		if err := rep.Fprint(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("usage: tracestat [-top N] [-json] spans.json | tracestat -diff a.json b.json")
	}
}

// analyze runs the critical-path analyzer over one trace file.
func analyze(path string, top int) *critpath.Report {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	a, err := critpath.FromTrace(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	rep := a.Report(top)
	if rep.Requests == 0 {
		fmt.Fprintf(os.Stderr, "tracestat: warning: %s has no finalized request spans (was the run traced with telemetry on?)\n", path)
	}
	return rep
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
