// Command decisionstat analyzes an exported decision ledger (the JSON from
// cmd/serve's -decisions-out or the daemon's /decisions endpoint): every
// control-plane choice of a run with its counterfactual cost vector. It
// prints the per-scheme regret ranking of the collective-scheme picks, the
// scale laws' shadow disagreement matrix, the expected-vs-realized latency
// drift, and the single-run shadow ranking of the ScalePolicy laws — the
// what-would-the-road-not-taken-have-cost twin of tracestat's where-did-the-
// time-go breakdown.
//
// Usage:
//
//	serve -trace trace.json -decisions-out run.decisions.json ...
//	decisionstat run.decisions.json
//	decisionstat -regret run.decisions.json
//	decisionstat -json run.decisions.json
//	decisionstat -tsv run.decisions.json
//	decisionstat -diff before.json after.json
//
// With -diff, two ledgers' summaries are compared side by side — which
// scheme gained regret, which law started disagreeing. Output is
// deterministic for deterministic runs, so the golden gate pins the -tsv
// rendering per case.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"heroserve/internal/telemetry/decisions"
)

func main() {
	diff := flag.Bool("diff", false, "compare two ledgers' summaries (takes two files)")
	asJSON := flag.Bool("json", false, "emit summary + shadow ranking as JSON instead of text")
	regret := flag.Bool("regret", false, "print only the regret rankings (schemes + shadow laws)")
	tsv := flag.Bool("tsv", false, "emit the deterministic summary TSV (the golden-gate pin)")
	flag.Parse()

	args := flag.Args()
	switch {
	case *diff && len(args) == 2:
		a := load(args[0])
		b := load(args[1])
		if err := decisions.FprintDiff(os.Stdout, a.Summarize(), b.Summarize()); err != nil {
			fatalf("%v", err)
		}
	case !*diff && len(args) == 1:
		led := load(args[0])
		sum := led.Summarize()
		ranks := led.ShadowRanking()
		switch {
		case *tsv:
			if err := sum.WriteTSV(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		case *asJSON:
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Summary       *decisions.Summary     `json:"summary"`
				ShadowRanking []decisions.ShadowRank `json:"shadow_ranking,omitempty"`
			}{sum, ranks}); err != nil {
				fatalf("%v", err)
			}
		case *regret:
			printSchemes(os.Stdout, sum)
			printShadowRanking(os.Stdout, ranks)
		default:
			printSummary(os.Stdout, sum, ranks)
		}
	default:
		fatalf("usage: decisionstat [-regret|-json|-tsv] run.decisions.json | decisionstat -diff a.json b.json")
	}
}

// load parses one ledger file ("-" for stdin).
func load(path string) *decisions.Ledger {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	led, err := decisions.ReadJSON(r)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if led.Len() == 0 {
		fmt.Fprintf(os.Stderr, "decisionstat: warning: %s holds no decision records (was the run telemetered?)\n", path)
	}
	return led
}

// printSummary renders the full text report.
func printSummary(w io.Writer, s *decisions.Summary, ranks []decisions.ShadowRank) {
	fmt.Fprintf(w, "decision ledger: %d collective picks, %d scale steps\n", s.Collective, s.Scale)
	if s.Collective > 0 {
		fmt.Fprintf(w, "execution regret %.6gs total, %d guard fallbacks, %d picks under control-plane stall\n",
			s.TotalRegretSeconds, s.Fallbacks, s.Stalled)
		printSchemes(w, s)
	}
	if s.Scale > 0 {
		fmt.Fprintf(w, "\nscale laws (primary: %s; %d shadow disagreements)\n", s.Primary, s.Disagreements)
		fmt.Fprintf(w, "  %-14s %10s %10s %10s %10s\n", "law", "scale_out", "scale_in", "hold", "disagree")
		for _, l := range s.Laws {
			fmt.Fprintf(w, "  %-14s %10d %10d %10d %10d\n", l.Law, l.ScaleOut, l.ScaleIn, l.Hold, l.Disagree)
		}
		if d := s.Drift; d != nil {
			fmt.Fprintf(w, "expected-vs-realized drift over %d outcome windows (%d completions, attainment %.1f%%):\n",
				d.Windows, d.Completed, d.Attainment*100)
			fmt.Fprintf(w, "  TTFT signal %.3fs -> realized %.3fs (%+.3fs); TPOT signal %.4fs -> realized %.4fs (%+.4fs)\n",
				d.MeanSignalTTFT, d.MeanRealizedTTFT, d.MeanRealizedTTFT-d.MeanSignalTTFT,
				d.MeanSignalTPOT, d.MeanRealizedTPOT, d.MeanRealizedTPOT-d.MeanSignalTPOT)
		}
		printShadowRanking(w, ranks)
	}
}

// printSchemes renders the per-scheme counterfactual table, cheapest first.
func printSchemes(w io.Writer, s *decisions.Summary) {
	if len(s.Schemes) == 0 {
		return
	}
	fmt.Fprintf(w, "counterfactual cost of always forcing a scheme (vs the optimum; lower is better):\n")
	fmt.Fprintf(w, "  %-12s %14s %8s %8s %9s %7s\n", "scheme", "regret (s)", "chosen", "exec", "unpriced", "absent")
	for _, st := range s.Schemes {
		reg := fmt.Sprintf("%.6f", st.RegretSeconds)
		if math.IsInf(st.RegretSeconds, 0) {
			reg = "+Inf"
		}
		fmt.Fprintf(w, "  %-12s %14s %8d %8d %9d %7d\n",
			st.Scheme, reg, st.Chosen, st.Executed, st.Unpriced, st.Absent)
	}
}

// printShadowRanking renders the single-run counterfactual law ranking.
func printShadowRanking(w io.Writer, ranks []decisions.ShadowRank) {
	if len(ranks) == 0 {
		return
	}
	fmt.Fprintf(w, "shadow ranking (single-run counterfactual replay; attainment desc, GPU-seconds asc):\n")
	fmt.Fprintf(w, "  %4s %-14s %12s %14s %8s %10s\n", "rank", "law", "est attain", "est GPU-s", "charged", "completed")
	for _, r := range ranks {
		fmt.Fprintf(w, "  %4d %-14s %11.1f%% %14.1f %8d %10d\n",
			r.Rank, r.Law, r.EstAttainment*100, r.EstGPUSeconds, r.ChargedMisses, r.Completed)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "decisionstat: "+format+"\n", args...)
	os.Exit(1)
}
