// Command tracegen emits a synthetic ShareGPT-like (chatbot) or
// LongBench-like (summarization) request trace as JSON on stdout, with
// Poisson arrival timestamps — the workload substitution documented in
// DESIGN.md.
//
// Usage:
//
//	tracegen -kind chatbot -n 1000 -rate 5 > chatbot.json
package main

import (
	"flag"
	"fmt"
	"os"

	"heroserve/internal/workload"
)

func main() {
	kindFlag := flag.String("kind", "chatbot", "chatbot | summarization")
	n := flag.Int("n", 100, "request count")
	rate := flag.Float64("rate", 1, "Poisson arrival rate (req/s)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	stats := flag.Bool("stats", false, "print summary statistics to stderr")
	flag.Parse()

	var kind workload.Kind
	switch *kindFlag {
	case "chatbot":
		kind = workload.Chatbot
	case "summarization":
		kind = workload.Summarization
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kindFlag)
		os.Exit(2)
	}
	trace := workload.NewGenerator(kind, *seed).Generate(*n, *rate)
	if *stats {
		s := trace.BatchStats(len(trace.Requests))
		fmt.Fprintf(os.Stderr, "requests=%d duration=%.1fs total_in=%d total_out=%d mean_in=%.1f mean_out=%.1f\n",
			len(trace.Requests), trace.Duration(), s.Kin, s.Kout,
			float64(s.Kin)/float64(len(trace.Requests)), float64(s.Kout)/float64(len(trace.Requests)))
	}
	if err := trace.Encode(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
