// Command topoviz emits a Graphviz DOT rendering of a cluster topology —
// GPUs clustered by server (colored by type), switches, and links styled by
// technology — for inspecting the fabrics the experiments run on.
//
// Usage:
//
//	topoviz -topology testbed | dot -Tsvg > testbed.svg
//	topoviz -topology pod8 -servers 16
package main

import (
	"flag"
	"fmt"
	"os"

	"heroserve/internal/topology"
)

func main() {
	topo := flag.String("topology", "testbed", "testbed | pod2 | pod8 | pcie")
	servers := flag.Int("servers", 12, "pod server count")
	flag.Parse()

	var g *topology.Graph
	switch *topo {
	case "testbed":
		g = topology.Testbed()
	case "pod2":
		g = topology.Pod2Tracks(*servers)
	case "pod8":
		g = topology.Pod8Tracks(*servers)
	case "pcie":
		g = topology.Pod(topology.PodConfig{
			Servers: *servers, Server: topology.L40Server(),
			Tracks: 1, ServersPerGroup: *servers, CoreSwitches: 1,
		})
	default:
		fmt.Fprintf(os.Stderr, "topoviz: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	writeDOT(g)
}

func writeDOT(g *topology.Graph) {
	fmt.Println("graph cluster {")
	fmt.Println("  layout=neato; overlap=false; splines=true;")
	fmt.Println("  node [fontname=\"monospace\", fontsize=9];")

	// Servers become subgraph clusters.
	for s := 0; s < g.NumServers(); s++ {
		fmt.Printf("  subgraph cluster_srv%d {\n    label=\"server %d\";\n", s, s)
		for _, id := range g.ServerGPUs(s) {
			n := g.Node(id)
			color := map[string]string{
				"A100": "#8fd19e", "V100": "#9ec5fe", "L40": "#ffda6a",
			}[n.GPUType]
			if color == "" {
				color = "#dddddd"
			}
			label := n.Name
			if n.NUMA > 0 || hasNUMA(g, s) {
				label = fmt.Sprintf("%s\\nnuma%d", n.Name, n.NUMA)
			}
			fmt.Printf("    n%d [label=\"%s\", shape=box, style=filled, fillcolor=\"%s\"];\n", id, label, color)
		}
		fmt.Println("  }")
	}
	for _, id := range g.Switches() {
		n := g.Node(id)
		shape := "diamond"
		if n.Kind == topology.KindCoreSwitch {
			shape = "doublecircle"
		}
		fmt.Printf("  n%d [label=\"%s\\n%d slots\", shape=%s, style=filled, fillcolor=\"#f1aeb5\"];\n",
			id, n.Name, n.INASlots, shape)
	}
	// Hosts.
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(topology.NodeID(i))
		if n.Kind == topology.KindHost {
			fmt.Printf("  n%d [label=\"%s\", shape=ellipse];\n", n.ID, n.Name)
		}
	}

	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(topology.EdgeID(i))
		style := map[topology.LinkKind]string{
			topology.LinkNVLink:   "color=\"#2f9e44\", penwidth=2",
			topology.LinkPCIe:     "color=\"#e8890c\", style=dashed",
			topology.LinkEthernet: "color=\"#1971c2\"",
			topology.LinkTrunk:    "color=\"#862e9c\", penwidth=3",
		}[e.Kind]
		fmt.Printf("  n%d -- n%d [%s, tooltip=\"%s %.0f GB/s\"];\n",
			e.A, e.B, style, e.Kind, e.Capacity/1e9)
	}
	fmt.Println("}")
}

// hasNUMA reports whether a server spans multiple NUMA domains.
func hasNUMA(g *topology.Graph, server int) bool {
	for _, id := range g.ServerGPUs(server) {
		if g.Node(id).NUMA > 0 {
			return true
		}
	}
	return false
}
