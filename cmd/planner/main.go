// Command planner runs HeroServe's scalability-oriented offline planner
// (paper Alg. 1 + Alg. 2) on a chosen topology and prints the resulting
// deployment: the Table II outputs — parallelism degrees, GPU groups,
// per-stage aggregation switches, and communication schemes.
//
// Usage:
//
//	planner -topology testbed -model opt-66b -rate 3 -ttft 2.5 -tpot 0.15
//	planner -topology pod2 -servers 12 -model opt-175b -rate 2 -hetero=false
package main

import (
	"flag"
	"fmt"
	"os"

	"heroserve/internal/model"
	"heroserve/internal/planner"
	"heroserve/internal/serving"
	"heroserve/internal/topology"
	"heroserve/internal/workload"
)

func main() {
	topo := flag.String("topology", "testbed", "testbed | pod2 | pod8")
	servers := flag.Int("servers", 12, "pod server count (pod topologies)")
	modelName := flag.String("model", "opt-66b", "opt-13b | opt-66b | opt-175b")
	rate := flag.Float64("rate", 3, "arrival rate lambda (req/s)")
	ttft := flag.Float64("ttft", 2.5, "TTFT SLA (s)")
	tpot := flag.Float64("tpot", 0.15, "TPOT SLA (s)")
	kind := flag.String("workload", "chatbot", "chatbot | summarization")
	batch := flag.Int("batch", 32, "representative batch size Q")
	hetero := flag.Bool("hetero", true, "allow the heterogeneous INA scheme")
	minTens := flag.Int("min-tens-decode", 0, "floor on decode tensor parallelism (cross-server regime)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	verbose := flag.Bool("v", false, "trace every candidate's evaluation")
	flag.Parse()

	var g *topology.Graph
	switch *topo {
	case "testbed":
		g = topology.Testbed()
	case "pod2":
		g = topology.Pod2Tracks(*servers)
	case "pod8":
		g = topology.Pod8Tracks(*servers)
	default:
		fatalf("unknown topology %q", *topo)
	}

	var cfg model.Config
	switch *modelName {
	case "opt-13b":
		cfg = model.OPT13B()
	case "opt-66b":
		cfg = model.OPT66B()
	case "opt-175b":
		cfg = model.OPT175B()
	default:
		fatalf("unknown model %q", *modelName)
	}

	wk := workload.Chatbot
	if *kind == "summarization" {
		wk = workload.Summarization
	}
	trace := workload.NewGenerator(wk, *seed).Generate(512, 1)

	pre, dec := planner.SplitPoolsByServer(g, g.NumServers()/2)
	in := planner.Inputs{
		Model:         cfg,
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace.BatchStats(*batch),
		Lambda:        *rate,
		SLA:           serving.SLA{TTFT: *ttft, TPOT: *tpot},
		Hetero:        *hetero,
		MinTensDecode: *minTens,
		Seed:          *seed,
	}
	if *verbose {
		in.Trace = func(c planner.Candidate, h float64, reason string) {
			fmt.Fprintf(os.Stderr, "  %v: H=%.4g  %s\n", c, h, reason)
		}
	}
	plan, err := planner.Solve(in)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("chosen configuration: %s\n", plan.Candidate)
	fmt.Printf("estimates: Tpre=%.4gs Tdec=%.4gs Tf=%.4gs Tqueue=%.4gs H=%.4g req/s\n",
		plan.Tpre, plan.Tdec, plan.Tf, plan.Tqueue, plan.H)
	fmt.Printf("search: %d candidates, %d perturbation iterations\n\n",
		plan.CandidatesTried, plan.PerturbIterations)

	show := func(role string, specs []serving.InstanceSpec) {
		fmt.Printf("%s instances: %d\n", role, len(specs))
		for i := range specs {
			spec := &specs[i]
			fmt.Printf("  instance %d (%dx%d):\n", i, spec.Ptens(), spec.Ppipe())
			for s, stage := range spec.Stages {
				swName := "-"
				if sw := spec.AggSwitch[s]; sw >= 0 {
					swName = g.Node(sw).Name
				}
				fmt.Printf("    stage %d: scheme=%-10s switch=%-14s gpus=", s, spec.Scheme[s], swName)
				for j, id := range stage {
					if j > 0 {
						fmt.Print(",")
					}
					fmt.Print(g.Node(id).Name)
				}
				fmt.Println()
			}
		}
	}
	show("prefill", plan.Deployment.Prefill)
	show("decode", plan.Deployment.Decode)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "planner: "+format+"\n", args...)
	os.Exit(1)
}
