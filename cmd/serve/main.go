// Command serve replays a request trace (from cmd/tracegen or hand-written
// JSON) through a chosen serving system on a chosen topology and prints the
// latency outcomes — the end-to-end path a downstream user drives.
//
// Usage:
//
//	tracegen -kind chatbot -n 100 -rate 4 > trace.json
//	serve -trace trace.json -system heroserve -topology testbed -model opt-66b
//	serve -trace trace.json -system distserve -elephants 4
//	serve -trace trace.json -trace-out spans.json -metrics-out metrics.prom
//
// Daemon mode keeps a live observability plane up while the simulation runs
// (and after it finishes, until interrupted): /metrics serves the Prometheus
// exposition, /healthz liveness (degraded while SLO alerts fire), /runs the
// completed-run summaries as JSON, /decisions the counterfactual decision
// ledger, /alerts the SLO alert log, and /trace the current trace snapshot.
// With -daemon, -system accepts a comma-separated list replayed sequentially
// against the same trace:
//
//	serve -trace trace.json -daemon -listen :9090 -system heroserve,distserve
//	curl localhost:9090/metrics
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"heroserve/internal/baselines"
	"heroserve/internal/core"
	"heroserve/internal/model"
	"heroserve/internal/planner"
	"heroserve/internal/serving"
	"heroserve/internal/stats"
	"heroserve/internal/telemetry"
	"heroserve/internal/telemetry/critpath"
	"heroserve/internal/telemetry/perf"
	"heroserve/internal/telemetry/slo"
	"heroserve/internal/topology"
	"heroserve/internal/workload"
)

// Allowed values for the enumerated flags, validated before any work starts
// so a typo fails fast instead of after trace parsing and planning.
var (
	systems = map[string]bool{"heroserve": true, "distserve": true, "ds-atp": true, "ds-switchml": true}
	topos   = map[string]bool{"testbed": true, "pod2": true, "pod8": true}
	models  = map[string]bool{"opt-13b": true, "opt-66b": true, "opt-175b": true}
)

func main() {
	tracePath := flag.String("trace", "", "JSON trace file ('-' for stdin)")
	system := flag.String("system", "heroserve", "heroserve | distserve | ds-atp | ds-switchml (comma list with -daemon)")
	topo := flag.String("topology", "testbed", "testbed | pod2 | pod8")
	servers := flag.Int("servers", 12, "pod server count")
	modelName := flag.String("model", "opt-66b", "opt-13b | opt-66b | opt-175b")
	ttft := flag.Float64("ttft", 2.5, "TTFT SLA (s)")
	tpot := flag.Float64("tpot", 0.15, "TPOT SLA (s)")
	batch := flag.Int("batch", 32, "planner batch size Q")
	minTens := flag.Int("min-tens-decode", 0, "decode tensor-parallel floor (cross-server regime)")
	elephants := flag.Int("elephants", 0, "background elephant-flow lanes")
	autoscale := flag.Bool("autoscale", false, "enable decode-instance autoscaling")
	scalePolicy := flag.String("scale-policy", "backlog", "autoscaler policy: backlog | occupancy | kv-headroom | hybrid-slo | alert-aware | adaptive")
	seed := flag.Int64("seed", 1, "deterministic seed")
	traceOut := flag.String("trace-out", "", "stream Chrome trace-event JSON (Perfetto-loadable) here")
	metricsOut := flag.String("metrics-out", "", "write text-format metrics here")
	metricsFormat := flag.String("metrics-format", "prom", "metrics exposition format: prom | openmetrics")
	decisionsOut := flag.String("decisions-out", "", "write the decision ledger (JSON; decisionstat-readable) here")
	alertsOut := flag.String("alerts-out", "", "write the SLO alert log (JSON; alertstat-readable) here")
	sloRules := flag.String("slo-rules", "default", "SLO alert rules: default (keyed off -ttft/-tpot) | off | <rules.json>")
	maxRuns := flag.Int("max-runs", 0, "daemon: retain only the newest N completed runs (0 = unbounded)")
	maxDecisions := flag.Int("max-decisions", 0, "retain only the newest N decision-ledger records per kind (0 = unbounded)")
	maxAlerts := flag.Int("max-alerts", 0, "retain only the newest N resolved alerts (0 = unbounded)")
	pushURL := flag.String("push-url", "", "POST metrics snapshots to this endpoint (pushgateway path layout appended unless present)")
	pushEvery := flag.Float64("push-every", 15, "metrics push cadence in simulated seconds (with -push-url)")
	netsimRef := flag.Bool("netsim-ref", false, "use the reference (global) water-filling allocator instead of the incremental fast path (bit-identical output)")
	simRef := flag.Bool("sim-ref", false, "use the reference binary-heap event queue instead of the timer wheel (bit-identical output)")
	daemon := flag.Bool("daemon", false, "serve /metrics /healthz /runs /trace over HTTP and stay up after the run")
	listen := flag.String("listen", ":9090", "daemon listen address")
	publishEvery := flag.Float64("publish-every", 5, "daemon metrics-snapshot cadence in simulated seconds")
	perfOut := flag.String("perf-out", "", "write the simulator's self-profiling report (JSON; perfstat-readable) here")
	perfEvery := flag.Int("perf-every", 0, "perf sampling stride: time every Nth event (0 = default)")
	pprofFlag := flag.Bool("pprof", false, "daemon: expose net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	sysNames := strings.Split(*system, ",")
	if len(sysNames) > 1 && !*daemon {
		fatalf("comma-separated -system requires -daemon")
	}
	for _, name := range sysNames {
		if !systems[name] {
			fatalf("unknown system %q (allowed: %s)", name, allowed(systems))
		}
	}
	if !topos[*topo] {
		fatalf("unknown topology %q (allowed: %s)", *topo, allowed(topos))
	}
	if !models[*modelName] {
		fatalf("unknown model %q (allowed: %s)", *modelName, allowed(models))
	}
	if *daemon && *publishEvery <= 0 {
		fatalf("-publish-every must be positive")
	}
	if *metricsFormat != "prom" && *metricsFormat != "openmetrics" {
		fatalf("unknown -metrics-format %q (allowed: prom | openmetrics)", *metricsFormat)
	}
	if *pushURL != "" && *pushEvery <= 0 {
		fatalf("-push-every must be positive")
	}
	if _, perr := serving.NewScalePolicy(*scalePolicy); perr != nil {
		fatalf("%v", perr)
	}
	if *alertsOut != "" && *sloRules == "off" {
		fatalf("-alerts-out needs an armed monitor; drop -slo-rules=off")
	}
	if *maxRuns < 0 || *maxDecisions < 0 || *maxAlerts < 0 {
		fatalf("retention caps must be >= 0")
	}
	if *pprofFlag && !*daemon {
		fatalf("-pprof requires -daemon (it mounts on the daemon mux)")
	}
	if *perfEvery < 0 {
		fatalf("-perf-every must be >= 0")
	}
	if *tracePath == "" {
		fatalf("-trace required (use cmd/tracegen to produce one)")
	}
	var trace *workload.Trace
	var err error
	if *tracePath == "-" {
		trace, err = workload.Decode(os.Stdin)
	} else {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		defer f.Close()
		trace, err = workload.Decode(f)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if len(trace.Requests) == 0 {
		fatalf("empty trace")
	}

	var g *topology.Graph
	switch *topo {
	case "testbed":
		g = topology.Testbed()
	case "pod2":
		g = topology.Pod2Tracks(*servers)
	case "pod8":
		g = topology.Pod8Tracks(*servers)
	}
	var cfg model.Config
	switch *modelName {
	case "opt-13b":
		cfg = model.OPT13B()
	case "opt-66b":
		cfg = model.OPT66B()
	case "opt-175b":
		cfg = model.OPT175B()
	}

	rate := float64(len(trace.Requests)) / trace.Duration()
	pre, dec := planner.SplitPoolsByServer(g, g.NumServers()/2)
	sla := serving.SLA{TTFT: *ttft, TPOT: *tpot}
	in := planner.Inputs{
		Model:         cfg,
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace.BatchStats(*batch),
		Lambda:        rate,
		SLA:           sla,
		MinTensDecode: *minTens,
		Seed:          *seed,
	}

	// Telemetry: daemon mode always arms the hub; -trace-out selects the
	// streaming tracer backend so long runs never buffer the trace in RAM.
	var hub *telemetry.Hub
	if *traceOut != "" || *metricsOut != "" || *daemon || *decisionsOut != "" || *pushURL != "" || *alertsOut != "" {
		hub = telemetry.New()
	}
	// SLO monitoring defaults on for every telemetered run: the default rule
	// set keys its burn-rate objectives off the workload's SLA flags, so the
	// alert log is meaningful without any extra configuration.
	var sloCfg *slo.Config
	if hub != nil && *sloRules != "off" {
		var rules []slo.Rule
		if *sloRules == "default" {
			rules = slo.DefaultRules(*ttft, *tpot)
		} else {
			rf, rerr := os.Open(*sloRules)
			if rerr != nil {
				fatalf("slo rules: %v", rerr)
			}
			rules, rerr = slo.ParseRules(rf)
			rf.Close()
			if rerr != nil {
				fatalf("slo rules %s: %v", *sloRules, rerr)
			}
		}
		sloCfg = &slo.Config{Rules: rules, MaxResolved: *maxAlerts}
	}
	var pusher *telemetry.Pusher
	if *pushURL != "" {
		var perr error
		pusher, perr = telemetry.NewPusher(*pushURL, "heroserve", nil)
		if perr != nil {
			fatalf("%v", perr)
		}
		fmt.Printf("pushing metrics to %s every %gs (simulated)\n", pusher.URL(), *pushEvery)
	}
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatalf("trace export: %v", err)
		}
		if err := hub.Trace.StreamTo(traceFile); err != nil {
			fatalf("trace export: %v", err)
		}
	}

	var srv *telemetry.Server
	var perfPub *perf.Publisher
	if *daemon {
		srv = telemetry.NewServer()
		srv.SetMaxRuns(*maxRuns)
		slo.InstallAlerts(srv)
		perfPub = perf.InstallPerf(srv)
		if *pprofFlag {
			perf.InstallPprof(srv)
		}
		if *traceOut != "" {
			srv.SetTraceFile(*traceOut)
		}
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			fatalf("daemon: %v", lerr)
		}
		endpoints := "/metrics /healthz /runs /decisions /alerts /trace /perf"
		if *pprofFlag {
			endpoints += " /debug/pprof/"
		}
		fmt.Printf("daemon: serving %s on %s\n", endpoints, ln.Addr())
		go func() {
			if serr := http.Serve(ln, srv); serr != nil {
				fmt.Fprintf(os.Stderr, "serve: daemon http: %v\n", serr)
			}
		}()
	}

	var push *pushState
	if pusher != nil {
		push = &pushState{pusher: pusher, every: *pushEvery}
		// Pre-register the failure counter so a clean run still exports the
		// family at 0 and scrapes can rate() it from the start.
		hub.Metrics.Counter("telemetry_push_failures_total",
			"Metrics push attempts dropped after exhausting retries.", nil)
	}
	for _, name := range sysNames {
		runSystem(name, in, trace, hub, srv, runParams{
			sla: sla, autoscale: *autoscale, scalePolicy: *scalePolicy,
			elephants: *elephants, seed: *seed, publishEvery: *publishEvery,
			netsimRef: *netsimRef, simRef: *simRef,
			decisionsOut: *decisionsOut, alertsOut: *alertsOut,
			slo: sloCfg, ledgerCap: *maxDecisions, push: push,
			perfOut: *perfOut, perfEvery: *perfEvery, perfPub: perfPub,
		})
	}
	if pusher != nil {
		pusher.Close()
		// The push goroutine has exited: the failure count is final, so the
		// exported expositions below carry the true total.
		push.settle(hub)
		fmt.Printf("pushed %d metric snapshots (%d failed)\n", pusher.Pushed(), pusher.Failures())
	}

	if *traceOut != "" {
		if err := hub.Trace.CloseStream(); err != nil {
			fatalf("trace export: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("trace export: %v", err)
		}
		fmt.Printf("streamed %d trace events to %s\n", hub.Trace.Len(), *traceOut)
	}
	if *metricsOut != "" {
		write := hub.Metrics.WriteProm
		if *metricsFormat == "openmetrics" {
			write = hub.Metrics.WriteOpenMetrics
		}
		if err := exportFile(*metricsOut, write); err != nil {
			fatalf("metrics export: %v", err)
		}
		fmt.Printf("wrote metrics (%s) to %s\n", *metricsFormat, *metricsOut)
	}

	if *daemon {
		fmt.Println("daemon: runs complete; serving until interrupted (Ctrl-C)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// runParams carries the per-run knobs that are not planner inputs.
type runParams struct {
	sla          serving.SLA
	autoscale    bool
	scalePolicy  string
	elephants    int
	seed         int64
	publishEvery float64
	netsimRef    bool
	simRef       bool
	decisionsOut string
	alertsOut    string
	slo          *slo.Config
	ledgerCap    int
	push         *pushState
	perfOut      string
	perfEvery    int
	perfPub      *perf.Publisher
}

// pushState carries the metrics pusher plus the failure count already
// mirrored into the telemetry_push_failures_total counter, across runs.
type pushState struct {
	pusher *telemetry.Pusher
	every  float64
	synced int64
}

// sync renders the registry, offers it to the push goroutine, and mirrors
// any new failures into the registry counter. Runs on the sim goroutine.
func (ps *pushState) sync(hub *telemetry.Hub) {
	var buf bytes.Buffer
	if err := hub.Metrics.WriteProm(&buf); err == nil {
		ps.pusher.Offer(buf.Bytes())
	}
	ps.settle(hub)
}

// settle mirrors failures accumulated on the push goroutine into the
// telemetry_push_failures_total counter. Called at sim-goroutine safe points
// and once more after Close (when the count is final) so the exported
// exposition reflects every drop.
func (ps *pushState) settle(hub *telemetry.Hub) {
	if f := ps.pusher.Failures(); f > ps.synced {
		hub.Metrics.Counter("telemetry_push_failures_total",
			"Metrics push attempts dropped after exhausting retries.", nil).
			Add(float64(f - ps.synced))
		ps.synced = f
	}
}

// runSystem plans, builds, and replays the trace through one system,
// printing its summary. With a daemon server attached it also schedules
// periodic sim-time snapshot publications and records the run for /runs.
func runSystem(name string, in planner.Inputs, trace *workload.Trace, hub *telemetry.Hub, srv *telemetry.Server, p runParams) {
	opts := serving.Options{ReferenceNetsim: p.netsimRef, ReferenceSim: p.simRef}
	if p.autoscale {
		// Policies are stateful; build a fresh one per system run.
		pol, err := serving.NewScalePolicy(p.scalePolicy)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Autoscale = &serving.AutoscaleConfig{InitialActive: 1, Policy: pol}
	}
	if hub != nil {
		opts.Telemetry = hub
		opts.SLA = &p.sla
		opts.SLO = p.slo
		opts.LedgerCap = p.ledgerCap
	}
	// The performance observatory: one sampler per run (wall-clock state is
	// run-scoped), armed whenever its output has somewhere to go.
	var sampler *perf.Sampler
	if p.perfOut != "" || p.perfPub != nil {
		sampler = perf.NewSampler(p.perfEvery)
		opts.Perf = sampler
	}

	var sys *serving.System
	var plan *planner.Plan
	var err error
	switch name {
	case "heroserve":
		sys, plan, _, err = core.NewSystem(in, nil, opts)
	case "distserve":
		sys, plan, err = baselines.NewSystem(baselines.DistServe, in, opts)
	case "ds-atp":
		sys, plan, err = baselines.NewSystem(baselines.DSATP, in, opts)
	case "ds-switchml":
		sys, plan, err = baselines.NewSystem(baselines.DSSwitchML, in, opts)
	}
	if err != nil {
		fatalf("planning %s: %v", name, err)
	}
	if p.elephants > 0 {
		sys.InjectElephants(p.elephants, 512<<20, trace.Duration()+120, p.seed+99)
	}
	if srv != nil {
		// Periodic snapshots ride the event loop itself: callbacks run on the
		// simulation goroutine, so rendering the registry there is race-free,
		// and scrapers see fresh numbers while the run is still in flight.
		eng := sys.Engine()
		horizon := trace.Duration() + 120
		for t := p.publishEvery; t < horizon; t += p.publishEvery {
			eng.Schedule(t, func() {
				srv.PublishHub(hub)
				publishDecisions(srv, sys)
				publishAlerts(srv, sys)
				publishPerf(p.perfPub, sampler, name)
			})
		}
	}
	if p.push != nil {
		// Metric pushes ride the event loop the same way; the POST itself
		// happens on the pusher's own goroutine (latest-wins mailbox), so a
		// slow endpoint cannot stall the simulation.
		eng := sys.Engine()
		horizon := trace.Duration() + 120
		for t := p.push.every; t < horizon; t += p.push.every {
			eng.Schedule(t, func() { p.push.sync(hub) })
		}
	}

	res := sys.Run(trace)
	rate := float64(len(trace.Requests)) / trace.Duration()
	ttfts := stats.Summarize(res.TTFTs())
	tpots := stats.Summarize(res.TPOTs())
	fmt.Printf("system=%s plan=%s trace=%s requests=%d rate=%.3g req/s\n",
		res.PolicyName, plan.Candidate, trace.Name, len(trace.Requests), rate)
	fmt.Printf("served=%d in %.1fs simulated; SLA attainment=%.1f%%\n",
		res.Served, res.Duration, res.Attainment(p.sla)*100)
	fmt.Printf("TTFT: mean=%.3fs p50=%.3fs p90=%.3fs p99=%.3fs\n", ttfts.Mean, ttfts.P50, ttfts.P90, ttfts.P99)
	fmt.Printf("TPOT: mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs\n", tpots.Mean, tpots.P50, tpots.P90, tpots.P99)
	fmt.Printf("comm: ring=%d ina-sync=%d ina-async=%d hetero=%d transfers=%d\n",
		res.Comm.RingOps, res.Comm.INASyncOps, res.Comm.INAAsyncOps, res.Comm.HeteroOps, res.Comm.Transfers)
	fmt.Printf("decode KV: mean=%.1f%% peak=%.1f%%; GPU-seconds=%.0f\n",
		res.MeanKVUtilization()*100, res.PeakKVUtilization()*100, res.ActiveGPUSeconds)
	if len(res.ScaleEvents) > 0 {
		fmt.Printf("autoscaler events:\n")
		for _, e := range res.ScaleEvents {
			fmt.Printf("  t=%8.2fs %-10s instance=%d active=%d\n", e.T, e.Action, e.ID, e.Active)
		}
	}
	if cp := res.CritPath; cp != nil && cp.Requests > 0 {
		fmt.Printf("critical path: ")
		first := true
		for _, e := range critpathSummary(cp) {
			if !first {
				fmt.Printf(" ")
			}
			fmt.Printf("%s=%.1f%%", e.stage, e.share*100)
			first = false
		}
		fmt.Printf(" (of %.1fs total e2e; tracestat for the full breakdown)\n", cp.E2ESum())
	}
	if d := res.Decisions; d != nil && d.Collective+d.Scale > 0 {
		fmt.Printf("decisions: %s (decisionstat for the full ledger)\n", d)
	}
	if al := res.Alerts; al != nil {
		fmt.Printf("alerts: %s (alertstat for the timeline)\n", al)
	}
	if p.decisionsOut != "" {
		if led := sys.DecisionLedger(); led != nil {
			if err := exportFile(p.decisionsOut, led.WriteJSON); err != nil {
				fatalf("decisions export: %v", err)
			}
			fmt.Printf("wrote decision ledger (%d records) to %s\n", led.Len(), p.decisionsOut)
		}
	}
	if p.alertsOut != "" {
		if mon := sys.SLOMonitor(); mon != nil {
			if err := exportFile(p.alertsOut, mon.WriteLog); err != nil {
				fatalf("alerts export: %v", err)
			}
			log := mon.Log()
			fmt.Printf("wrote alert log (%d alerts, %d rules) to %s\n",
				len(log.Alerts), len(log.Meta.Rules), p.alertsOut)
		}
	}
	if sampler != nil {
		r := sampler.Report(name)
		fmt.Printf("perf: %.3g events/s, %.4g wall-seconds per sim-second; engine=%.0f%% serve=%.0f%% realloc=%.0f%% self=%.1f%%\n",
			r.EventsPerSec, r.WallPerSim,
			phasePct(r, r.Phases.EngineSeconds), phasePct(r, r.Phases.ServeSeconds),
			phasePct(r, r.Phases.ReallocSeconds), phasePct(r, r.Phases.SelfSeconds))
		if p.perfOut != "" {
			if err := exportFile(p.perfOut, r.WriteJSON); err != nil {
				fatalf("perf export: %v", err)
			}
			fmt.Printf("wrote perf report (%d events sampled 1-in-%d) to %s\n",
				r.Events, r.SampleEvery, p.perfOut)
		}
		publishPerf(p.perfPub, sampler, name)
	}
	if p.push != nil {
		p.push.sync(hub)
	}

	if srv != nil {
		// Publish before AddRun so the run's /runs/diff snapshot includes its
		// own final metrics.
		if err := srv.PublishHub(hub); err != nil {
			fmt.Fprintf(os.Stderr, "serve: daemon publish: %v\n", err)
		}
		publishDecisions(srv, sys)
		publishAlerts(srv, sys)
		evicted := srv.AddRun(telemetry.RunSummary{
			System:     name,
			Policy:     res.PolicyName,
			Trace:      trace.Name,
			Requests:   len(trace.Requests),
			Served:     res.Served,
			SimSeconds: res.Duration,
			Attainment: res.Attainment(p.sla),
			TTFT:       telemetry.Latency{Mean: ttfts.Mean, P50: ttfts.P50, P90: ttfts.P90, P99: ttfts.P99},
			TPOT:       telemetry.Latency{Mean: tpots.Mean, P50: tpots.P50, P90: tpots.P90, P99: tpots.P99},
		})
		if evicted > 0 {
			hub.Metrics.Counter("telemetry_evictions_total",
				"Telemetry records dropped by retention caps, by kind.",
				[]string{"kind"}, "run").Add(float64(evicted))
		}
	}
}

// phasePct renders one phase's share of the report's wall time in percent.
func phasePct(r *perf.Report, seconds float64) float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return seconds / r.WallSeconds * 100
}

// publishPerf renders the run's current perf report for the daemon's /perf
// endpoint. Like PublishHub it runs on the simulation goroutine; mid-run
// calls publish a live in-flight snapshot.
func publishPerf(pub *perf.Publisher, sampler *perf.Sampler, system string) {
	if pub == nil || sampler == nil {
		return
	}
	if err := pub.Publish(sampler.Report(system)); err != nil {
		fmt.Fprintf(os.Stderr, "serve: perf publish: %v\n", err)
	}
}

// publishAlerts renders the run's SLO alert log plus the firing-set roll-up
// for the daemon's /alerts and /healthz endpoints. Like PublishHub it runs
// on the simulation goroutine.
func publishAlerts(srv *telemetry.Server, sys *serving.System) {
	mon := sys.SLOMonitor()
	if mon == nil {
		return
	}
	var buf bytes.Buffer
	if err := mon.WriteLog(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "serve: alerts publish: %v\n", err)
		return
	}
	feed := mon.Feed()
	worst := ""
	if w, ok := feed.Worst(); ok {
		worst = w.String()
	}
	srv.PublishAlerts(buf.Bytes(), len(feed.Active()), worst)
}

// publishDecisions renders the run's decision ledger for the daemon's
// /decisions endpoint. Like PublishHub it runs on the simulation goroutine.
func publishDecisions(srv *telemetry.Server, sys *serving.System) {
	led := sys.DecisionLedger()
	if led == nil {
		return
	}
	var buf bytes.Buffer
	if err := led.WriteJSON(&buf); err != nil {
		fmt.Fprintf(os.Stderr, "serve: decisions publish: %v\n", err)
		return
	}
	srv.PublishDecisions(buf.Bytes())
}

// cpEntry is one stage's share of the end-to-end critical path.
type cpEntry struct {
	stage string
	share float64
}

// critpathSummary returns the top three stages by E2E share, largest first
// (ties by stage name for a deterministic one-liner).
func critpathSummary(cp *critpath.Report) []cpEntry {
	total := cp.E2ESum()
	if total <= 0 {
		return nil
	}
	entries := make([]cpEntry, 0, len(cp.E2ETotal))
	for s, v := range cp.E2ETotal {
		entries = append(entries, cpEntry{stage: s, share: v / total})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].share != entries[j].share {
			return entries[i].share > entries[j].share
		}
		return entries[i].stage < entries[j].stage
	})
	if len(entries) > 3 {
		entries = entries[:3]
	}
	return entries
}

// exportFile writes one telemetry artifact via its writer function.
func exportFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// allowed renders a flag's value set in stable order for error messages.
func allowed(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " | ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
