// Command serve replays a request trace (from cmd/tracegen or hand-written
// JSON) through a chosen serving system on a chosen topology and prints the
// latency outcomes — the end-to-end path a downstream user drives.
//
// Usage:
//
//	tracegen -kind chatbot -n 100 -rate 4 > trace.json
//	serve -trace trace.json -system heroserve -topology testbed -model opt-66b
//	serve -trace trace.json -system distserve -elephants 4
package main

import (
	"flag"
	"fmt"
	"os"

	"heroserve/internal/baselines"
	"heroserve/internal/core"
	"heroserve/internal/model"
	"heroserve/internal/planner"
	"heroserve/internal/serving"
	"heroserve/internal/stats"
	"heroserve/internal/topology"
	"heroserve/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "JSON trace file ('-' for stdin)")
	system := flag.String("system", "heroserve", "heroserve | distserve | ds-atp | ds-switchml")
	topo := flag.String("topology", "testbed", "testbed | pod2 | pod8")
	servers := flag.Int("servers", 12, "pod server count")
	modelName := flag.String("model", "opt-66b", "opt-13b | opt-66b | opt-175b")
	ttft := flag.Float64("ttft", 2.5, "TTFT SLA (s)")
	tpot := flag.Float64("tpot", 0.15, "TPOT SLA (s)")
	batch := flag.Int("batch", 32, "planner batch size Q")
	minTens := flag.Int("min-tens-decode", 0, "decode tensor-parallel floor (cross-server regime)")
	elephants := flag.Int("elephants", 0, "background elephant-flow lanes")
	autoscale := flag.Bool("autoscale", false, "enable decode-instance autoscaling")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if *tracePath == "" {
		fatalf("-trace required (use cmd/tracegen to produce one)")
	}
	var trace *workload.Trace
	var err error
	if *tracePath == "-" {
		trace, err = workload.Decode(os.Stdin)
	} else {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		defer f.Close()
		trace, err = workload.Decode(f)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if len(trace.Requests) == 0 {
		fatalf("empty trace")
	}

	var g *topology.Graph
	switch *topo {
	case "testbed":
		g = topology.Testbed()
	case "pod2":
		g = topology.Pod2Tracks(*servers)
	case "pod8":
		g = topology.Pod8Tracks(*servers)
	default:
		fatalf("unknown topology %q", *topo)
	}
	var cfg model.Config
	switch *modelName {
	case "opt-13b":
		cfg = model.OPT13B()
	case "opt-66b":
		cfg = model.OPT66B()
	case "opt-175b":
		cfg = model.OPT175B()
	default:
		fatalf("unknown model %q", *modelName)
	}

	rate := float64(len(trace.Requests)) / trace.Duration()
	pre, dec := planner.SplitPoolsByServer(g, g.NumServers()/2)
	in := planner.Inputs{
		Model:         cfg,
		Graph:         g,
		PrefillGPUs:   pre,
		DecodeGPUs:    dec,
		Workload:      trace.BatchStats(*batch),
		Lambda:        rate,
		SLA:           serving.SLA{TTFT: *ttft, TPOT: *tpot},
		MinTensDecode: *minTens,
		Seed:          *seed,
	}
	opts := serving.Options{}
	if *autoscale {
		opts.Autoscale = &serving.AutoscaleConfig{InitialActive: 1}
	}

	var sys *serving.System
	var plan *planner.Plan
	switch *system {
	case "heroserve":
		sys, plan, _, err = core.NewSystem(in, nil, opts)
	case "distserve":
		sys, plan, err = baselines.NewSystem(baselines.DistServe, in, opts)
	case "ds-atp":
		sys, plan, err = baselines.NewSystem(baselines.DSATP, in, opts)
	case "ds-switchml":
		sys, plan, err = baselines.NewSystem(baselines.DSSwitchML, in, opts)
	default:
		fatalf("unknown system %q", *system)
	}
	if err != nil {
		fatalf("planning: %v", err)
	}
	if *elephants > 0 {
		sys.InjectElephants(*elephants, 512<<20, trace.Duration()+120, *seed+99)
	}

	res := sys.Run(trace)
	sla := serving.SLA{TTFT: *ttft, TPOT: *tpot}
	ttfts := stats.Summarize(res.TTFTs())
	tpots := stats.Summarize(res.TPOTs())
	fmt.Printf("system=%s plan=%s trace=%s requests=%d rate=%.3g req/s\n",
		res.PolicyName, plan.Candidate, trace.Name, len(trace.Requests), rate)
	fmt.Printf("served=%d in %.1fs simulated; SLA attainment=%.1f%%\n",
		res.Served, res.Duration, res.Attainment(sla)*100)
	fmt.Printf("TTFT: mean=%.3fs p50=%.3fs p90=%.3fs p99=%.3fs\n", ttfts.Mean, ttfts.P50, ttfts.P90, ttfts.P99)
	fmt.Printf("TPOT: mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs\n", tpots.Mean, tpots.P50, tpots.P90, tpots.P99)
	fmt.Printf("comm: ring=%d ina-sync=%d ina-async=%d hetero=%d transfers=%d\n",
		res.Comm.RingOps, res.Comm.INASyncOps, res.Comm.INAAsyncOps, res.Comm.HeteroOps, res.Comm.Transfers)
	fmt.Printf("decode KV: mean=%.1f%% peak=%.1f%%; GPU-seconds=%.0f\n",
		res.MeanKVUtilization()*100, res.PeakKVUtilization()*100, res.ActiveGPUSeconds)
	if len(res.ScaleEvents) > 0 {
		fmt.Printf("autoscaler events:\n")
		for _, e := range res.ScaleEvents {
			fmt.Printf("  t=%8.2fs %-10s instance=%d active=%d\n", e.T, e.Action, e.ID, e.Active)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}
