// Command heroserve regenerates the paper's evaluation artifacts: every
// figure of §V plus the planner telemetry, printed as text tables.
//
// Usage:
//
//	heroserve -exp fig7              # one experiment
//	heroserve -exp all -scale full   # everything, paper-sized sweeps
//	heroserve -exp faults -trace-out spans.json -metrics-out metrics.prom
//	heroserve -list                  # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"heroserve/internal/experiments"
	"heroserve/internal/telemetry"
)

type runner func(experiments.Scale, int64) (*experiments.Report, error)

var registry = []struct {
	id   string
	desc string
	run  runner
}{
	{"fig1", "prefill cost breakdown, LLaMA-3-70B TP=4 over 100GbE", func(_ experiments.Scale, _ int64) (*experiments.Report, error) {
		return experiments.Fig1(), nil
	}},
	{"fig2", "homogeneous vs heterogeneous INA aggregation delay", func(_ experiments.Scale, _ int64) (*experiments.Report, error) {
		return experiments.Fig2(), nil
	}},
	{"fig7", "testbed scalability and latency, OPT-66B", experiments.Fig7},
	{"fig8", "pod-scale scalability, OPT-175B, 2tracks/8tracks", experiments.Fig8},
	{"fig9", "in-network aggregation throughput vs message size", experiments.Fig9},
	{"fig10", "KV-cache memory efficiency over time", experiments.Fig10},
	{"alg1", "offline planner search telemetry", experiments.Alg1},
	{"ablations", "online-scheduler design-choice ablations", experiments.Ablations},
	{"ext-pcie", "future work: NUMA-aware PCIe pre-reduction", experiments.ExtPCIe},
	{"ext-scale", "future work: rapid decode-instance scaling in/out", experiments.ExtScale},
	{"crossover", "scheme crossover study: ring vs INA vs hetero by size", experiments.Crossover},
	{"faults", "fault resilience: SLA attainment under injected faults", experiments.FaultsExperiment},
}

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text | csv")
	scaleFlag := flag.String("scale", "quick", "sweep sizing: quick | full")
	seed := flag.Int64("seed", 1, "deterministic seed")
	list := flag.Bool("list", false, "list experiment ids")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON across all runs here")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text-format metrics across all runs here")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-6s %s\n", e.id, e.desc)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "heroserve: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}
	switch *format {
	case "text", "csv":
	default:
		fmt.Fprintf(os.Stderr, "heroserve: unknown format %q (text|csv)\n", *format)
		os.Exit(2)
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "heroserve: -exp required (use -list to enumerate; 'all' runs everything)")
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, e := range registry {
			ids = append(ids, e.id)
		}
	}
	// Resolve every id before running anything, so a typo in a comma list
	// fails fast instead of after hours of earlier experiments.
	runs := make([]runner, len(ids))
	for i, id := range ids {
		for _, e := range registry {
			if e.id == id {
				runs[i] = e.run
				break
			}
		}
		if runs[i] == nil {
			var known []string
			for _, e := range registry {
				known = append(known, e.id)
			}
			fmt.Fprintf(os.Stderr, "heroserve: unknown experiment %q (available: %s)\n", id, strings.Join(known, " "))
			os.Exit(2)
		}
	}

	var hub *telemetry.Hub
	if *traceOut != "" || *metricsOut != "" {
		hub = telemetry.New()
		experiments.SetTelemetry(hub)
	}

	for i, id := range ids {
		rep, err := runs[i](scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			rep.Fprint(os.Stdout)
		case "csv":
			if err := rep.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "heroserve: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *traceOut != "" {
		if err := exportFile(*traceOut, hub.Trace.Export); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", hub.Trace.Len(), *traceOut)
	}
	if *metricsOut != "" {
		if err := exportFile(*metricsOut, hub.Metrics.WriteProm); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

// exportFile writes one telemetry artifact via its writer function.
func exportFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
