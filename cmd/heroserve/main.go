// Command heroserve regenerates the paper's evaluation artifacts: every
// figure of §V plus the planner telemetry, printed as text tables.
//
// Usage:
//
//	heroserve -exp fig7              # one experiment
//	heroserve -exp all -scale full   # everything, paper-sized sweeps
//	heroserve -exp faults -trace-out spans.json -metrics-out metrics.prom
//	heroserve -exp all -listen :9090 # live /metrics + /runs during the sweep
//	heroserve -list                  # enumerate experiment ids
//
// With -trace-out the tracer streams events to disk incrementally (the
// StreamTracer backend), so `-exp all -scale full` sweeps no longer buffer
// the whole trace in RAM. With -listen, /metrics, /healthz, /runs, and
// /trace are served over HTTP and refreshed after every completed serving
// run, so scrapers can watch a multi-hour sweep live; the process still
// exits when the sweep finishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"heroserve/internal/experiments"
	"heroserve/internal/serving"
	"heroserve/internal/stats"
	"heroserve/internal/telemetry"
)

type runner func(experiments.Scale, int64) (*experiments.Report, error)

var registry = []struct {
	id   string
	desc string
	run  runner
}{
	{"fig1", "prefill cost breakdown, LLaMA-3-70B TP=4 over 100GbE", func(_ experiments.Scale, _ int64) (*experiments.Report, error) {
		return experiments.Fig1(), nil
	}},
	{"fig2", "homogeneous vs heterogeneous INA aggregation delay", func(_ experiments.Scale, _ int64) (*experiments.Report, error) {
		return experiments.Fig2(), nil
	}},
	{"fig7", "testbed scalability and latency, OPT-66B", experiments.Fig7},
	{"fig8", "pod-scale scalability, OPT-175B, 2tracks/8tracks", experiments.Fig8},
	{"fig9", "in-network aggregation throughput vs message size", experiments.Fig9},
	{"fig10", "KV-cache memory efficiency over time", experiments.Fig10},
	{"alg1", "offline planner search telemetry", experiments.Alg1},
	{"ablations", "online-scheduler design-choice ablations", experiments.Ablations},
	{"ext-pcie", "future work: NUMA-aware PCIe pre-reduction", experiments.ExtPCIe},
	{"ext-scale", "future work: rapid decode-instance scaling in/out", experiments.ExtScale},
	{"crossover", "scheme crossover study: ring vs INA vs hetero by size", experiments.Crossover},
	{"faults", "fault resilience: SLA attainment under injected faults", experiments.FaultsExperiment},
}

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	format := flag.String("format", "text", "output format: text | csv | json")
	scaleFlag := flag.String("scale", "quick", "sweep sizing: quick | full")
	seed := flag.Int64("seed", 1, "deterministic seed")
	list := flag.Bool("list", false, "list experiment ids")
	traceOut := flag.String("trace-out", "", "stream Chrome trace-event JSON across all runs here")
	metricsOut := flag.String("metrics-out", "", "write text-format metrics across all runs here")
	metricsFormat := flag.String("metrics-format", "prom", "metrics exposition format: prom | openmetrics")
	listen := flag.String("listen", "", "serve live /metrics /healthz /runs /trace on this address during the sweep")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-6s %s\n", e.id, e.desc)
		}
		return
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "heroserve: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "heroserve: unknown format %q (text|csv|json)\n", *format)
		os.Exit(2)
	}
	switch *metricsFormat {
	case "prom", "openmetrics":
	default:
		fmt.Fprintf(os.Stderr, "heroserve: unknown metrics format %q (prom|openmetrics)\n", *metricsFormat)
		os.Exit(2)
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "heroserve: -exp required (use -list to enumerate; 'all' runs everything)")
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = nil
		for _, e := range registry {
			ids = append(ids, e.id)
		}
	}
	// Resolve every id before running anything, so a typo in a comma list
	// fails fast instead of after hours of earlier experiments.
	runs := make([]runner, len(ids))
	for i, id := range ids {
		for _, e := range registry {
			if e.id == id {
				runs[i] = e.run
				break
			}
		}
		if runs[i] == nil {
			var known []string
			for _, e := range registry {
				known = append(known, e.id)
			}
			fmt.Fprintf(os.Stderr, "heroserve: unknown experiment %q (available: %s)\n", id, strings.Join(known, " "))
			os.Exit(2)
		}
	}

	var hub *telemetry.Hub
	if *traceOut != "" || *metricsOut != "" || *listen != "" {
		hub = telemetry.New()
		experiments.SetTelemetry(hub)
	}
	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: trace export: %v\n", err)
			os.Exit(1)
		}
		if err := hub.Trace.StreamTo(traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: trace export: %v\n", err)
			os.Exit(1)
		}
	}
	if *listen != "" {
		srv := telemetry.NewServer()
		if *traceOut != "" {
			srv.SetTraceFile(*traceOut)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving /metrics /healthz /runs /trace on %s\n", ln.Addr())
		go func() {
			if serr := http.Serve(ln, srv); serr != nil {
				fmt.Fprintf(os.Stderr, "heroserve: http: %v\n", serr)
			}
		}()
		// The observer runs on the sweep goroutine after each serving run, so
		// publishing the hub from it is race-free (see telemetry.Server).
		experiments.SetRunObserver(func(kind experiments.SystemKind, res *serving.Results, sla serving.SLA) {
			ttfts := stats.Summarize(res.TTFTs())
			tpots := stats.Summarize(res.TPOTs())
			// Publish before AddRun so the run's /runs/diff snapshot includes
			// its own final metrics.
			if err := srv.PublishHub(hub); err != nil {
				fmt.Fprintf(os.Stderr, "heroserve: publish: %v\n", err)
			}
			srv.AddRun(telemetry.RunSummary{
				System:     kind.String(),
				Policy:     res.PolicyName,
				Trace:      "experiment",
				Requests:   len(res.Requests),
				Served:     res.Served,
				SimSeconds: res.Duration,
				Attainment: res.Attainment(sla),
				TTFT:       telemetry.Latency{Mean: ttfts.Mean, P50: ttfts.P50, P90: ttfts.P90, P99: ttfts.P99},
				TPOT:       telemetry.Latency{Mean: tpots.Mean, P50: tpots.P50, P90: tpots.P90, P99: tpots.P99},
			})
		})
	}

	for i, id := range ids {
		rep, err := runs[i](scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "text":
			rep.Fprint(os.Stdout)
		case "csv":
			if err := rep.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "heroserve: csv: %v\n", err)
				os.Exit(1)
			}
		case "json":
			if err := rep.FprintJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "heroserve: json: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *traceOut != "" {
		if err := hub.Trace.CloseStream(); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: trace export: %v\n", err)
			os.Exit(1)
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("streamed %d trace events to %s\n", hub.Trace.Len(), *traceOut)
	}
	if *metricsOut != "" {
		write := hub.Metrics.WriteProm
		if *metricsFormat == "openmetrics" {
			write = hub.Metrics.WriteOpenMetrics
		}
		if err := exportFile(*metricsOut, write); err != nil {
			fmt.Fprintf(os.Stderr, "heroserve: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics (%s) to %s\n", *metricsFormat, *metricsOut)
	}
}

// exportFile writes one telemetry artifact via its writer function.
func exportFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
