// Command perfstat renders the simulator's self-profiling reports (the
// -perf-out JSON of cmd/serve, also served at the daemon's /perf endpoint):
// where the wall-clock went, how fast sim-time advanced, how deep the event
// queue ran, and how large the water-filling components were.
//
// Usage:
//
//	serve -trace trace.json -perf-out perf.json
//	perfstat perf.json              # human-readable summary
//	perfstat -json perf.json        # normalized JSON re-emission
//	perfstat -diff old.json new.json  # throughput / phase deltas of two runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heroserve/internal/telemetry/perf"
)

func main() {
	asJSON := flag.Bool("json", false, "re-emit the (validated) report as JSON")
	diff := flag.Bool("diff", false, "compare two reports: perfstat -diff a.json b.json")
	flag.Parse()

	args := flag.Args()
	switch {
	case *diff:
		if len(args) != 2 {
			fatalf("-diff wants exactly two report files")
		}
		printDiff(load(args[0]), load(args[1]))
	case len(args) == 1:
		r := load(args[0])
		if *asJSON {
			if err := r.WriteJSON(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			return
		}
		printSummary(r)
	default:
		fatalf("usage: perfstat [-json] report.json | perfstat -diff a.json b.json")
	}
}

func load(path string) *perf.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	r, err := perf.ReadReport(data)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return r
}

// printSummary renders the human-readable report. The "events/s" and
// "wall-seconds per sim-second" spellings are load-bearing: scripts/ci.sh
// greps for them as the perf-smoke contract.
func printSummary(r *perf.Report) {
	fmt.Printf("perf report: system=%s (sampled 1-in-%d)\n", orDash(r.System), r.SampleEvery)
	fmt.Printf("wall %.3fs for %.2f sim-seconds; wall-seconds per sim-second %.6f\n",
		r.WallSeconds, r.SimSeconds, r.WallPerSim)
	fmt.Printf("events %d (%.3g events/s); sampled %d\n", r.Events, r.EventsPerSec, r.SampledEvents)

	fmt.Printf("phase split of wall-clock:\n")
	phases := []struct {
		name string
		sec  float64
	}{
		{"engine (queue + loop)", r.Phases.EngineSeconds},
		{"serve callbacks", r.Phases.ServeSeconds},
		{"netsim water-filling", r.Phases.ReallocSeconds},
		{"observatory self", r.Phases.SelfSeconds},
	}
	for _, p := range phases {
		fmt.Printf("  %-22s %8.4fs  %5.1f%%  %s\n",
			p.name, p.sec, pct(p.sec, r.WallSeconds), bar(p.sec, r.WallSeconds, 30))
	}

	q := r.Queue
	fmt.Printf("event queue: peak live %d (window %d, far %d, max bucket %d), peak tombstones %d\n",
		q.PeakLive, q.PeakWindow, q.PeakFar, q.PeakBucket, q.PeakTombstones)
	fmt.Printf("  lifetime: %d cancels, %d compactions\n", q.Final.Cancelled, q.Final.Compactions)

	n := r.Netsim
	fmt.Printf("netsim: %d reallocations; mean component %.2f flows / %.2f rounds (max %d flows, %d links)\n",
		n.Reallocs, n.MeanCompFlows, n.MeanRounds, n.MaxCompFlows, n.MaxCompLinks)
	if n.Reallocs > 0 {
		fmt.Printf("component-size distribution (flows touched per reallocation):\n")
		var peak uint64
		for _, b := range n.FlowsHistogram {
			if b.Count > peak {
				peak = b.Count
			}
		}
		for i, b := range n.FlowsHistogram {
			if b.Count == 0 {
				continue
			}
			label := fmt.Sprintf("<=%d", b.Le)
			if i == len(n.FlowsHistogram)-1 {
				label = fmt.Sprintf(">=%d", b.Le)
			}
			fmt.Printf("  %-7s %9d  %s\n", label, b.Count, bar(float64(b.Count), float64(peak), 30))
		}
	}
	if len(r.Progress) > 0 {
		last := r.Progress[len(r.Progress)-1]
		fmt.Printf("progress curve: %d points to sim %.2fs / wall %.3fs\n",
			len(r.Progress), last.SimSeconds, last.WallSeconds)
	}
}

// printDiff compares two reports' throughput and phase split. Wall-clock
// numbers are noisy by nature, so the output shows ratios, not verdicts.
func printDiff(a, b *perf.Report) {
	fmt.Printf("perf diff: %s -> %s\n", orDash(a.System), orDash(b.System))
	row := func(name string, va, vb float64, unit string) {
		ratio := "n/a"
		if va > 0 {
			ratio = fmt.Sprintf("%+.1f%%", (vb/va-1)*100)
		}
		fmt.Printf("  %-26s %12.4g -> %12.4g %-6s %s\n", name, va, vb, unit, ratio)
	}
	row("events/s", a.EventsPerSec, b.EventsPerSec, "ev/s")
	row("wall-seconds per sim-second", a.WallPerSim, b.WallPerSim, "")
	row("wall", a.WallSeconds, b.WallSeconds, "s")
	row("events", float64(a.Events), float64(b.Events), "")
	row("engine phase", a.Phases.EngineSeconds, b.Phases.EngineSeconds, "s")
	row("serve phase", a.Phases.ServeSeconds, b.Phases.ServeSeconds, "s")
	row("realloc phase", a.Phases.ReallocSeconds, b.Phases.ReallocSeconds, "s")
	row("self phase", a.Phases.SelfSeconds, b.Phases.SelfSeconds, "s")
	row("reallocations", float64(a.Netsim.Reallocs), float64(b.Netsim.Reallocs), "")
	row("mean component flows", a.Netsim.MeanCompFlows, b.Netsim.MeanCompFlows, "")
	row("peak queue depth", float64(a.Queue.PeakLive), float64(b.Queue.PeakLive), "")
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return part / whole * 100
}

func bar(part, whole float64, width int) string {
	if whole <= 0 || part <= 0 {
		return ""
	}
	n := int(part / whole * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "perfstat: "+format+"\n", args...)
	os.Exit(1)
}
