// Package heroserve reproduces "Scalable and Fast Inference Serving via
// Hybrid Communication Scheduling on Heterogeneous Networks" (CLUSTER 2025):
// an LLM inference-serving system that accelerates tensor-parallel data
// synchronization by scheduling collective communication across
// heterogeneous links — intra-server NVLink plus inter-server Ethernet with
// programmable-switch in-network aggregation.
//
// The implementation lives under internal/:
//
//   - internal/sim, internal/netsim, internal/switchsim — the simulated
//     substrate: discrete-event engine, max-min-fair flow-level network, and
//     the programmable-switch aggregation data/control plane.
//   - internal/topology, internal/model, internal/workload,
//     internal/queueing, internal/stats — cluster graphs, the LLM cost
//     model (paper Eq. 12-13), synthetic ShareGPT/LongBench traces, and the
//     analytic toolkit.
//   - internal/collective — ring, Ethernet INA (SwitchML/ATP semantics), and
//     HeroServe's heterogeneous INA, in analytic and simulated forms.
//   - internal/planner — the scalability-oriented offline planner
//     (paper Alg. 1 + Alg. 2).
//   - internal/scheduler — the load-aware online scheduler (paper Eq. 16-18).
//   - internal/serving — the event-driven disaggregated prefill/decode
//     serving simulator; internal/baselines — DistServe, DS-SwitchML,
//     DS-ATP; internal/core — HeroServe itself.
//   - internal/experiments — drivers regenerating every evaluation figure.
//
// Entry points: cmd/heroserve (figure regeneration), cmd/planner (offline
// planning), cmd/tracegen (trace synthesis), and the runnable examples under
// examples/. The benchmarks in bench_test.go regenerate one paper artifact
// each; see EXPERIMENTS.md for the paper-vs-measured record.
package heroserve
