// Smoke tests: every command under cmd/ and every program under examples/
// must compile and run to completion with tiny parameters. These catch
// wiring regressions (flag parsing, topology construction, planner
// defaults) that package-level unit tests cannot see.
package heroserve

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// run executes `go run ./dir args...` and returns combined output.
func run(t *testing.T, dir string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./" + dir}, args...)...)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s %v: %v\n%s", dir, args, err, out)
	}
	return string(out)
}

func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests compile binaries")
	}
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	cases := []struct {
		name string
		dir  string
		args []string
		// pre runs before the command (to generate inputs).
		pre func(t *testing.T)
	}{
		{name: "heroserve-list", dir: "cmd/heroserve", args: []string{"-list"}},
		{name: "heroserve-fig1", dir: "cmd/heroserve", args: []string{"-exp", "fig1"}},
		{name: "heroserve-fig2-csv", dir: "cmd/heroserve", args: []string{"-exp", "fig2", "-format", "csv"}},
		{name: "planner", dir: "cmd/planner", args: []string{"-model", "opt-13b", "-rate", "1"}},
		{name: "tracegen", dir: "cmd/tracegen", args: []string{"-n", "5", "-rate", "2", "-stats"}},
		{name: "topoviz", dir: "cmd/topoviz", args: []string{"-topology", "testbed"}},
		{
			name: "serve",
			dir:  "cmd/serve",
			args: []string{"-trace", traceFile, "-model", "opt-13b"},
			pre: func(t *testing.T) {
				out := run(t, "cmd/tracegen", "-n", "5", "-rate", "2")
				if err := os.WriteFile(traceFile, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{name: "example-quickstart", dir: "examples/quickstart"},
		{name: "example-chatbot", dir: "examples/chatbot"},
		{name: "example-summarization", dir: "examples/summarization"},
		{name: "example-inaswitch", dir: "examples/inaswitch"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if c.pre != nil {
				c.pre(t)
			}
			out := run(t, c.dir, c.args...)
			if len(out) == 0 {
				t.Fatalf("%s produced no output", c.name)
			}
		})
	}
}
